// Unit tests for the baseline congestion controllers, driven directly
// through the CongestionController interface with synthetic events.
#include <gtest/gtest.h>

#include "cc/bbr.h"
#include "cc/copa.h"
#include "cc/cubic.h"
#include "cc/ledbat.h"

namespace proteus {
namespace {

AckInfo ack(uint64_t seq, TimeNs now, TimeNs rtt, TimeNs owd = 0,
            int64_t inflight = 0) {
  AckInfo a;
  a.seq = seq;
  a.bytes = kMtuBytes;
  a.ack_time = now;
  a.rtt = rtt;
  a.sent_time = now - rtt;
  a.one_way_delay = owd > 0 ? owd : rtt / 2;
  a.bytes_in_flight = inflight;
  return a;
}

LossInfo loss(uint64_t seq, TimeNs now, int64_t inflight = 0) {
  LossInfo l;
  l.seq = seq;
  l.bytes = kMtuBytes;
  l.detected_time = now;
  l.bytes_in_flight = inflight;
  return l;
}

// ---- CUBIC -------------------------------------------------------------

TEST(Cubic, SlowStartDoublesPerRtt) {
  CubicSender c;
  const int64_t start = c.cwnd_bytes();
  TimeNs now = 0;
  uint64_t seq = 0;
  // One RTT worth of acks: cwnd grows by bytes acked.
  for (int i = 0; i < 10; ++i) {
    now += from_ms(3);
    c.on_ack(ack(seq++, now, from_ms(30)));
  }
  EXPECT_EQ(c.cwnd_bytes(), start + 10 * kMtuBytes);
  EXPECT_TRUE(c.in_slow_start());
}

TEST(Cubic, LossHalvesIshAndExitsSlowStart) {
  CubicSender c;
  TimeNs now = from_ms(100);
  uint64_t seq = 0;
  for (int i = 0; i < 50; ++i) c.on_ack(ack(seq++, now, from_ms(30)));
  const int64_t before = c.cwnd_bytes();
  c.on_loss(loss(seq, now));
  EXPECT_NEAR(static_cast<double>(c.cwnd_bytes()),
              0.7 * static_cast<double>(before),
              static_cast<double>(kMtuBytes));
  EXPECT_FALSE(c.in_slow_start());
}

TEST(Cubic, OneDecreasePerLossEpisode) {
  CubicSender c;
  TimeNs now = from_ms(100);
  uint64_t seq = 0;
  for (int i = 0; i < 50; ++i) c.on_ack(ack(seq++, now, from_ms(30)));
  c.on_loss(loss(seq, now));
  const int64_t after_first = c.cwnd_bytes();
  c.on_loss(loss(seq + 1, now + from_ms(1)));  // same episode
  EXPECT_EQ(c.cwnd_bytes(), after_first);
  c.on_loss(loss(seq + 2, now + from_ms(100)));  // new episode
  EXPECT_LT(c.cwnd_bytes(), after_first);
}

TEST(Cubic, ConcaveGrowthTowardWmax) {
  CubicSender c;
  TimeNs now = from_ms(100);
  uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) c.on_ack(ack(seq++, now, from_ms(30)));
  c.on_loss(loss(seq, now));
  const int64_t floor = c.cwnd_bytes();
  // Growth resumes after the loss, approaching the old plateau.
  int64_t prev = floor;
  for (int r = 0; r < 20; ++r) {
    now += from_ms(30);
    for (int i = 0; i < 30; ++i) c.on_ack(ack(seq++, now, from_ms(30)));
    EXPECT_GE(c.cwnd_bytes(), prev);
    prev = c.cwnd_bytes();
  }
  EXPECT_GT(prev, floor);
}

TEST(Cubic, NeverBelowMinWindow) {
  CubicSender c;
  TimeNs now = from_ms(50);
  for (int i = 0; i < 20; ++i) {
    c.on_loss(loss(i, now));
    now += from_sec(1);
  }
  EXPECT_GE(c.cwnd_bytes(), 2 * kMtuBytes);
}

TEST(Cubic, IsWindowOnlyProtocol) {
  CubicSender c;
  EXPECT_FALSE(c.pacing_rate().positive());
  EXPECT_EQ(c.name(), "cubic");
}

// ---- LEDBAT ------------------------------------------------------------

TEST(Ledbat, GrowsBelowTargetShrinksAbove) {
  LedbatSender l;
  l.on_start(0);
  TimeNs now = from_ms(10);
  uint64_t seq = 0;
  // Base OWD 20 ms; queuing 0 -> below 100 ms target -> grow.
  const int64_t start = l.cwnd_bytes();
  for (int i = 0; i < 20; ++i) {
    now += from_ms(5);
    l.on_ack(ack(seq++, now, from_ms(40), from_ms(20)));
  }
  EXPECT_GT(l.cwnd_bytes(), start);

  // Now OWD 180 ms (queuing 160 ms > target) -> shrink.
  const int64_t high = l.cwnd_bytes();
  // LEDBAT's linear decrease is slow (GAIN = 1); give it a few hundred
  // acks, and note the min-of-4 current-delay filter delays the signal.
  for (int i = 0; i < 600; ++i) {
    now += from_ms(5);
    l.on_ack(ack(seq++, now, from_ms(360), from_ms(180)));
  }
  EXPECT_LT(l.cwnd_bytes(), high);
}

TEST(Ledbat, TargetsConfiguredExtraDelay) {
  LedbatSender::Config cfg;
  cfg.target = from_ms(25);
  LedbatSender l(cfg);
  EXPECT_EQ(l.name(), "ledbat-25");
  l.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  // Queuing exactly at the 25 ms target: off_target = 0 -> cwnd frozen.
  l.on_ack(ack(seq++, now += from_ms(5), from_ms(40), from_ms(20)));
  for (int i = 0; i < 5; ++i) {
    l.on_ack(ack(seq++, now += from_ms(5), from_ms(90), from_ms(45)));
  }
  const int64_t at_target = l.cwnd_bytes();
  l.on_ack(ack(seq++, now += from_ms(5), from_ms(90), from_ms(45)));
  EXPECT_EQ(l.cwnd_bytes(), at_target);
}

TEST(Ledbat, LatecomerMeasuresInflatedBase) {
  // A latecomer whose every OWD sample includes 80 ms of standing queue
  // believes the base delay is 100 ms and keeps pushing.
  LedbatSender l;
  l.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  const int64_t start = l.cwnd_bytes();
  for (int i = 0; i < 50; ++i) {
    l.on_ack(ack(seq++, now += from_ms(5), from_ms(200), from_ms(100)));
  }
  EXPECT_EQ(l.base_delay(), from_ms(100));
  EXPECT_EQ(l.queuing_delay(), 0);
  EXPECT_GT(l.cwnd_bytes(), start);  // keeps growing on a full queue
}

TEST(Ledbat, HalvesOnLossOncePerRtt) {
  LedbatSender l;
  l.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    l.on_ack(ack(seq++, now += from_ms(2), from_ms(40), from_ms(20)));
  }
  const int64_t before = l.cwnd_bytes();
  l.on_loss(loss(seq, now));
  EXPECT_EQ(l.cwnd_bytes(), std::max(before / 2, 2 * kMtuBytes));
  const int64_t after = l.cwnd_bytes();
  l.on_loss(loss(seq + 1, now + from_ms(1)));
  EXPECT_EQ(l.cwnd_bytes(), after);  // within the same RTT
}

// ---- BBR ---------------------------------------------------------------

TEST(Bbr, StartupUsesHighGain) {
  BbrSender b;
  b.on_start(0);
  EXPECT_EQ(b.mode(), BbrSender::Mode::kStartup);
  EXPECT_TRUE(b.pacing_rate().positive());
}

TEST(Bbr, TracksDeliveryRateAndMinRtt) {
  BbrSender b;
  b.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  // 1 packet per ms delivered -> 12 Mbps.
  for (int i = 0; i < 200; ++i) {
    SentPacketInfo s;
    s.seq = seq;
    s.bytes = kMtuBytes;
    s.sent_time = now;
    b.on_packet_sent(s);
    now += from_ms(1);
    b.on_ack(ack(seq++, now, from_ms(30)));
  }
  EXPECT_NEAR(b.max_bandwidth().mbps(), 12.0, 2.0);
  EXPECT_EQ(b.min_rtt(), from_ms(30));
}

TEST(Bbr, ScavengerForcedIntoProbeRttByDeviation) {
  BbrSender::Config cfg;
  cfg.scavenger = true;
  BbrSender b(cfg);
  EXPECT_EQ(b.name(), "bbr-s");
  b.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  auto feed = [&](TimeNs rtt) {
    SentPacketInfo s;
    s.seq = seq;
    s.bytes = kMtuBytes;
    s.sent_time = now;
    b.on_packet_sent(s);
    now += from_ms(1);
    b.on_ack(ack(seq++, now, rtt));
  };
  // The deviation tracker samples once per RTT; give it a few seconds.
  for (int i = 0; i < 2000; ++i) feed(from_ms(30));
  EXPECT_NE(b.mode(), BbrSender::Mode::kProbeRtt);
  // RTT swinging in ~RTT-scale blocks pushes the smoothed deviation over
  // the threshold.
  for (int i = 0; i < 2000; ++i) {
    feed((i / 30) % 2 == 0 ? from_ms(30) : from_ms(150));
    if (b.mode() == BbrSender::Mode::kProbeRtt) break;
  }
  EXPECT_EQ(b.mode(), BbrSender::Mode::kProbeRtt);
}

TEST(Bbr, PlainBbrIgnoresDeviation) {
  BbrSender b;
  b.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  for (int i = 0; i < 2000; ++i) {
    SentPacketInfo s;
    s.seq = seq;
    s.bytes = kMtuBytes;
    s.sent_time = now;
    b.on_packet_sent(s);
    now += from_ms(1);
    b.on_ack(ack(seq++, now, (i / 30) % 2 == 0 ? from_ms(30) : from_ms(150)));
  }
  EXPECT_NE(b.mode(), BbrSender::Mode::kProbeRtt);
}

TEST(Bbr, CwndIsGainTimesBdp) {
  BbrSender b;
  b.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  for (int i = 0; i < 300; ++i) {
    SentPacketInfo s;
    s.seq = seq;
    s.bytes = kMtuBytes;
    s.sent_time = now;
    b.on_packet_sent(s);
    now += from_ms(1);
    b.on_ack(ack(seq++, now, from_ms(30)));
  }
  // BDP = 12 Mbps * 30 ms = 45 KB; cwnd_gain 2 -> ~90 KB.
  EXPECT_NEAR(static_cast<double>(b.cwnd_bytes()), 90'000.0, 20'000.0);
}

// ---- COPA --------------------------------------------------------------

TEST(Copa, GrowsOnEmptyQueue) {
  CopaSender c;
  c.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  const int64_t start = c.cwnd_bytes();
  for (int i = 0; i < 50; ++i) {
    c.on_ack(ack(seq++, now += from_ms(2), from_ms(30)));
  }
  EXPECT_GT(c.cwnd_bytes(), start);
}

TEST(Copa, ShrinksWhenAboveTargetRate) {
  CopaSender c;
  c.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  for (int i = 0; i < 50; ++i) {
    c.on_ack(ack(seq++, now += from_ms(2), from_ms(30)));
  }
  // Standing queue of 30 ms: d_q = 30 ms -> target = 1/(0.5*0.03) = 66 pkt/s.
  // Current rate is far above -> shrink.
  const int64_t high = c.cwnd_bytes();
  for (int i = 0; i < 200; ++i) {
    c.on_ack(ack(seq++, now += from_ms(2), from_ms(60)));
  }
  EXPECT_LT(c.cwnd_bytes(), high);
}

TEST(Copa, CompetitiveModeWhenQueueNeverDrains) {
  CopaSender c;
  c.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  // A clean baseline first, so min RTT reflects the empty path...
  for (int i = 0; i < 5; ++i) {
    c.on_ack(ack(seq++, now += from_ms(2), from_ms(30)));
  }
  // ...then a standing queue that never drains: a buffer-filler is present.
  for (int i = 0; i < 600; ++i) {
    c.on_ack(ack(seq++, now += from_ms(2),
                 from_ms(55) + from_us((i * 37) % 2000)));
  }
  EXPECT_TRUE(c.competitive());
  EXPECT_LT(c.delta(), 0.5);
}

TEST(Copa, DefaultModeOnDrainingQueue) {
  CopaSender c;
  c.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  for (int i = 0; i < 600; ++i) {
    // Queue periodically drains to the base RTT.
    const TimeNs rtt = (i % 20 < 4) ? from_ms(30) : from_ms(45);
    c.on_ack(ack(seq++, now += from_ms(2), rtt));
  }
  EXPECT_FALSE(c.competitive());
  EXPECT_DOUBLE_EQ(c.delta(), 0.5);
}

TEST(Copa, LossOnlyMattersInCompetitiveMode) {
  CopaSender c;
  c.on_start(0);
  TimeNs now = 0;
  uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    c.on_ack(ack(seq++, now += from_ms(2), from_ms(30)));
  }
  const double delta_before = c.delta();
  c.on_loss(loss(seq, now));
  EXPECT_DOUBLE_EQ(c.delta(), delta_before);  // default mode ignores loss
}

}  // namespace
}  // namespace proteus
