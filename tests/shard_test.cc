// Sharded-execution + churn test suite.
//
// Covers, bottom-up:
//   * ShardSet (sim/shard.h) unit behavior: window barriers, the
//     canonical (when, src, seq) drain order, the conservative-lookahead
//     runtime check, chunked driving, and thread-count independence;
//   * Scenario::partition_plan — parts/window derive from the topology
//     alone, never from --shards;
//   * the tentpole determinism contract: the CDN-edge scenario produces
//     byte-identical digests at --shards=1/2/4 for all 8 protocols,
//     including a faulted+telemetry run, and legacy single-part shapes
//     ignore --shards entirely;
//   * ChurnDriver: shard-count invariance, cap-independent RNG streams,
//     and deterministic flow-id recycling (IdAllocator golden order);
//   * the churn-exposed satellite fixes: dense flow-table demux never
//     spills scenario ids to the sparse map, detach leaves no state
//     behind (re-attach of a recycled id is indistinguishable from a
//     fresh one), detached-flow ACKs still consume their reverse-path
//     events, and RingBuffer's empty-pop/front debug assertions fire.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/churn.h"
#include "harness/factory.h"
#include "harness/fault_spec.h"
#include "harness/scenario.h"
#include "harness/supervisor.h"
#include "harness/telemetry_export.h"
#include "harness/trace_export.h"
#include "sim/ring_buffer.h"
#include "sim/shard.h"
#include "sim/topology.h"

namespace proteus {
namespace {

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<FaultSpec> faults_or_die(const std::string& spec) {
  FaultParseResult r = parse_faults(spec);
  EXPECT_TRUE(r.ok) << r.error;
  return r.faults;
}

// ---------------------------------------------------------------------
// ShardSet unit behavior
// ---------------------------------------------------------------------

TEST(ShardSetUnit, CrossPartHandoffExecutesAtPostedTime) {
  ShardSet ss(2, from_ms(1), 7);
  std::vector<TimeNs> fired;
  // Posted before the first window: arrives in part 1's queue for t=2ms.
  ss.post(0, 1, from_ms(2), [&] { fired.push_back(ss.part(1).now()); });
  ss.run_until(from_ms(5), 1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], from_ms(2));
  EXPECT_EQ(ss.now(), from_ms(5));
}

TEST(ShardSetUnit, DrainOrderIsWhenThenSrcThenSeq) {
  // Parts 1 and 2 both post to part 0 at the same absolute time; part 2
  // posts first in wall order. The drain must still execute src-1
  // handoffs first, and within a src, in post order.
  ShardSet ss(3, from_ms(1), 7);
  std::vector<std::string> order;
  const TimeNs t = from_ms(3);  // two windows ahead of the posts below
  ss.part(2).schedule_at(from_ms(1), [&] {
    ss.post(2, 0, t, [&] { order.push_back("src2#0"); });
    ss.post(2, 0, t, [&] { order.push_back("src2#1"); });
  });
  ss.part(1).schedule_at(from_ms(1), [&] {
    ss.post(1, 0, t, [&] { order.push_back("src1#0"); });
  });
  // A local event at the same time always precedes drained handoffs.
  ss.part(0).schedule_at(t, [&] { order.push_back("local"); });
  ss.run_until(from_ms(5), 1);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "local");
  EXPECT_EQ(order[1], "src1#0");
  EXPECT_EQ(order[2], "src2#0");
  EXPECT_EQ(order[3], "src2#1");
}

TEST(ShardSetUnit, FastForwardSkipsIdleWindowsAndCountsThem) {
  // Events at 0.5 ms and 20.5 ms with nothing between: the window loop
  // must jump the 19 idle 1 ms windows instead of running 25 barriers.
  // barrier_windows + windows_fast_forwarded always equals the window
  // count a non-fast-forwarding loop would have executed.
  auto run = [](int threads) {
    ShardSet ss(2, from_ms(1), 7);
    std::vector<TimeNs> fired;
    ss.part(0).schedule_at(from_us(500), [&] { fired.push_back(ss.now()); });
    ss.part(1).schedule_at(from_ms(20) + from_us(500), [&] {
      fired.push_back(ss.part(1).now());
    });
    ss.run_until(from_ms(25), threads);
    EXPECT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[0], from_us(500));
    EXPECT_EQ(fired[1], from_ms(20) + from_us(500));
    return ss.window_stats();
  };
  const ShardSet::WindowStats serial = run(1);
  EXPECT_GT(serial.windows_fast_forwarded, 0u);
  EXPECT_LT(serial.barrier_windows, 25u);
  EXPECT_EQ(serial.barrier_windows + serial.windows_fast_forwarded, 25u);
  // The threaded loop computes the identical schedule.
  const ShardSet::WindowStats threaded = run(2);
  EXPECT_EQ(threaded.barrier_windows, serial.barrier_windows);
  EXPECT_EQ(threaded.windows_fast_forwarded, serial.windows_fast_forwarded);
}

TEST(ShardSetUnit, FastForwardPreservesHandoffTiming) {
  // A handoff posted across a long idle gap must still execute exactly
  // at its timestamp: the drain runs before the fast-forward decision,
  // so every future event is in some part's queue when the jump target
  // is computed.
  ShardSet ss(2, from_ms(1), 7);
  std::vector<TimeNs> fired;
  ss.part(0).schedule_at(from_ms(1), [&] {
    ss.post(0, 1, from_ms(15), [&] { fired.push_back(ss.part(1).now()); });
  });
  ss.run_until(from_ms(20), 1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], from_ms(15));
  EXPECT_GT(ss.window_stats().windows_fast_forwarded, 0u);
}

TEST(ShardSetUnit, LookaheadViolationThrows) {
  ShardSet ss(2, from_ms(1), 7);
  // From inside window [1, 2) ms, posting into the same window violates
  // the conservative invariant and must throw rather than corrupt.
  ss.part(0).schedule_at(from_ms(1), [&] {
    ss.post(0, 1, from_ms(1) + from_us(500), [] {});
  });
  EXPECT_THROW(ss.run_until(from_ms(5), 1), std::logic_error);
}

TEST(ShardSetUnit, PostAtWindowBoundaryIsLegal) {
  ShardSet ss(2, from_ms(1), 7);
  std::vector<TimeNs> fired;
  // The next window's start is exactly the lookahead floor: legal.
  ss.part(0).schedule_at(from_ms(1), [&] {
    ss.post(0, 1, from_ms(2), [&] { fired.push_back(ss.part(1).now()); });
  });
  ss.run_until(from_ms(5), 1);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], from_ms(2));
}

TEST(ShardSetUnit, BadConstructionThrows) {
  EXPECT_THROW(ShardSet(0, from_ms(1), 7), std::invalid_argument);
  EXPECT_THROW(ShardSet(2, 0, 7), std::invalid_argument);
  // A single part needs no window (there is no cut to bound).
  ShardSet ok(1, 0, 7);
  EXPECT_EQ(ok.parts(), 1);
}

// Relay: parts ping-pong a token with +window timestamps. Records every
// hop so runs are comparable event-for-event.
std::vector<std::string> relay_run(int threads, TimeNs chunk) {
  ShardSet ss(3, from_ms(1), 7);
  // hops[p] is only written by part p's owner thread; merged after.
  std::vector<std::vector<std::string>> hops(3);
  std::function<void(int, int)> hop = [&](int from, int to) {
    hops[to].push_back(std::to_string(from) + ">" + std::to_string(to) +
                       "@" + std::to_string(ss.part(to).now()));
    if (ss.part(to).now() >= from_ms(20)) return;
    const int next = (to + 1) % 3;
    ss.post(to, next, ss.part(to).now() + from_ms(1),
            [&hop, to, next] { hop(to, next); });
  };
  ss.post(0, 1, from_ms(1), [&hop] { hop(0, 1); });
  for (TimeNs t = chunk; t <= from_ms(25); t += chunk) {
    ss.run_until(t, threads);
  }
  std::vector<std::string> merged;
  for (const auto& h : hops) {
    for (const auto& s : h) merged.push_back(s);
  }
  return merged;
}

TEST(ShardSetUnit, ThreadCountAndChunkingNeverChangeTheRun) {
  const std::vector<std::string> base = relay_run(1, from_ms(25));
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, relay_run(1, from_ms(5)));   // chunked driving
  EXPECT_EQ(base, relay_run(2, from_ms(25)));  // threaded
  EXPECT_EQ(base, relay_run(4, from_ms(5)));   // threaded + chunked
}

// ---------------------------------------------------------------------
// Partition plan
// ---------------------------------------------------------------------

TEST(PartitionPlan, DerivedFromTopologyNotShards) {
  ScenarioConfig dumbbell;
  dumbbell.shards = 4;
  const PartitionPlan p1 = Scenario(dumbbell).partition_plan();
  EXPECT_EQ(p1.parts, 1);
  EXPECT_EQ(p1.window, 0);
  EXPECT_FALSE(p1.reason.empty());

  ScenarioConfig cdn;
  cdn.topology.kind = TopologyKind::kCdnEdge;
  cdn.topology.arms = 6;
  for (int shards : {0, 1, 4}) {
    cdn.shards = shards;
    const PartitionPlan p = Scenario(cdn).partition_plan();
    EXPECT_EQ(p.parts, 7);  // core + one part per arm
    // Window = access delay = core propagation = rtt/8.
    EXPECT_EQ(p.window, from_ms(cdn.rtt_ms / 8.0));
  }
}

// ---------------------------------------------------------------------
// CDN-edge shard-invariance goldens (the tentpole contract)
// ---------------------------------------------------------------------

// Digest of everything observable about a CDN run: per-flow transport
// counters, per-hop fabric counters, total event count, and the
// exported CSV bytes.
std::string cdn_digest(const std::string& protocol, int shards,
                       const std::string& tag) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kCdnEdge;
  cfg.topology.arms = 3;
  cfg.seed = 7;
  cfg.shards = shards;
  Scenario sc(cfg);
  Flow& a = sc.add_flow(protocol, 0);
  Flow& b = sc.add_flow(protocol, from_sec(1));
  Flow& c = sc.add_flow(protocol, from_sec(1));
  sc.run_until(from_sec(4));

  const std::string base = ::testing::TempDir() + "/shard_cdn_" + tag;
  EXPECT_TRUE(
      write_throughput_csv(base + ".csv", {&a, &b, &c}, from_sec(4)));
  EXPECT_TRUE(write_rtt_csv(base + "_rtt.csv", a));

  std::ostringstream os;
  os << protocol;
  for (const Flow* f : {&a, &b, &c}) {
    const SenderStats& ss = f->sender().stats();
    os << ' ' << ss.packets_sent << ' ' << ss.bytes_sent << ' '
       << ss.packets_acked << ' ' << ss.packets_lost << ' '
       << f->receiver().bytes_received();
  }
  for (const auto& [name, st] : sc.link_stats()) {
    os << ' ' << name << ' ' << st.offered_packets << ' '
       << st.delivered_packets << ' ' << st.tail_drops << ' '
       << st.max_queue_bytes;
  }
  os << ' ' << sc.events_processed();
  os << ' ' << std::hex << fnv1a(slurp(base + ".csv")) << ' '
     << fnv1a(slurp(base + "_rtt.csv"));
  return os.str();
}

TEST(ShardDeterminism, CdnByteIdenticalForAllProtocolsAndShardCounts) {
  std::vector<std::string> protocols = all_protocol_names();
  protocols.push_back("proteus-h");
  ASSERT_EQ(protocols.size(), 8u);
  for (const std::string& p : protocols) {
    const std::string serial = cdn_digest(p, 1, p + "_s1");
    EXPECT_EQ(serial, cdn_digest(p, 2, p + "_s2")) << p;
    EXPECT_EQ(serial, cdn_digest(p, 4, p + "_s4")) << p;
  }
}

// Faults on the shared core (blackout+reorder) and a leaf (capacity+
// ackloss), with per-MI telemetry export: the sharded engine must keep
// every fault RNG stream and telemetry byte identical across thread
// counts.
std::string cdn_faulted_digest(int shards, const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/shard_fault_" + tag;
  TelemetryConfig tcfg;
  tcfg.dir = dir;
  tcfg.every = 1;
  RunContext ctx(/*attempt=*/0, /*wall_timeout_sec=*/0,
                 /*sim_timeout_sec=*/0, /*trace_capacity=*/64);
  ctx.set_telemetry(&tcfg, "shard");

  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kCdnEdge;
  cfg.topology.arms = 3;
  cfg.seed = 42;
  cfg.shards = shards;
  cfg.faults = faults_or_die(
      "blackout@1:1,reorder@2:p=0.1:delta=10ms:1,"
      "link1:capacity@1:x=0.5:2,link2:ackloss@2:p=0.2:1");
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  Flow& g = sc.add_flow("cubic", from_ms(500));
  {
    FlowTelemetrySession session(&ctx, f, "flow0");
    sc.run_until(from_sec(4));
  }  // exports on destruction
  std::ostringstream os;
  for (const Flow* fl : {&f, &g}) {
    const SenderStats& ss = fl->sender().stats();
    os << ' ' << ss.packets_sent << ' ' << ss.packets_acked << ' '
       << ss.packets_lost << ' ' << fl->receiver().bytes_received();
  }
  for (const auto& [name, st] : sc.link_stats()) {
    os << ' ' << name << ' ' << st.offered_packets << ' '
       << st.blackout_drops << ' ' << st.reordered << ' ' << st.ack_drops;
  }
  os << ' ' << sc.events_processed() << ' ' << std::hex
     << fnv1a(slurp(dir + "/shard-flow0.jsonl"));
  return os.str();
}

TEST(ShardDeterminism, CdnFaultedTelemetryByteIdentical) {
  const std::string serial = cdn_faulted_digest(1, "s1");
  EXPECT_EQ(serial, cdn_faulted_digest(2, "s2"));
  EXPECT_EQ(serial, cdn_faulted_digest(4, "s4"));
}

TEST(ShardDeterminism, CoreRejectsReverseOnlyFaults) {
  // The shared core has no reverse delay edge of its own; ACK-path
  // faults must name a leaf link explicitly instead of silently doing
  // nothing.
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kCdnEdge;
  cfg.faults = faults_or_die("ackloss@2:p=0.2:1");
  EXPECT_THROW(Scenario sc(cfg), std::runtime_error);
}

// Legacy single-part shapes: --shards is a pure thread-count hint and
// must not perturb a single byte.
std::string legacy_digest(TopologyKind kind, int shards) {
  ScenarioConfig cfg;
  cfg.topology.kind = kind;
  cfg.seed = 7;
  cfg.shards = shards;
  Scenario sc(cfg);
  Flow& a = sc.add_flow("cubic", 0);
  Flow& b = sc.add_flow("proteus-s", from_sec(1));
  sc.run_until(from_sec(4));
  std::ostringstream os;
  for (const Flow* f : {&a, &b}) {
    os << ' ' << f->sender().stats().packets_sent << ' '
       << f->receiver().bytes_received();
  }
  os << ' ' << sc.events_processed();
  return os.str();
}

TEST(ShardDeterminism, SinglePartShapesIgnoreShardsFlag) {
  for (TopologyKind kind :
       {TopologyKind::kDumbbell, TopologyKind::kParkingLot}) {
    const std::string base = legacy_digest(kind, 0);
    EXPECT_EQ(base, legacy_digest(kind, 2));
    EXPECT_EQ(base, legacy_digest(kind, 4));
  }
}

// All 8 protocols on the legacy shapes: one part means the serial code
// path runs verbatim whatever --shards says, so this is cheap insurance
// that the plan derivation never misfires for a registered protocol.
std::string legacy_protocol_digest(TopologyKind kind,
                                   const std::string& protocol, int shards) {
  ScenarioConfig cfg;
  cfg.topology.kind = kind;
  cfg.seed = 7;
  cfg.shards = shards;
  Scenario sc(cfg);
  Flow& a = sc.add_flow(protocol, 0);
  sc.run_until(from_sec(3));
  std::ostringstream os;
  os << a.sender().stats().packets_sent << ' '
     << a.sender().stats().packets_acked << ' '
     << a.receiver().bytes_received() << ' ' << sc.events_processed();
  return os.str();
}

TEST(ShardDeterminism, LegacyShapesAllProtocolsShardInvariant) {
  std::vector<std::string> protocols = all_protocol_names();
  protocols.push_back("proteus-h");
  for (TopologyKind kind :
       {TopologyKind::kDumbbell, TopologyKind::kParkingLot}) {
    for (const std::string& p : protocols) {
      const std::string base = legacy_protocol_digest(kind, p, 0);
      EXPECT_EQ(base, legacy_protocol_digest(kind, p, 2)) << p;
      EXPECT_EQ(base, legacy_protocol_digest(kind, p, 4)) << p;
    }
  }
}

// ---------------------------------------------------------------------
// Churn: shard invariance, cap-independent RNG, id recycling
// ---------------------------------------------------------------------

struct ChurnRun {
  ChurnStats stats;
  uint64_t events = 0;
  std::string links;
};

ChurnRun churn_run(int shards, int64_t max_concurrent, uint64_t seed) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kCdnEdge;
  cfg.topology.arms = 3;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.planned_flows = 2 * max_concurrent;
  Scenario sc(cfg);
  ChurnConfig ch;
  ch.arrivals_per_sec = 400;
  ch.mean_size_kb = 48;
  ch.max_concurrent = max_concurrent;
  ChurnRun r;
  {
    ChurnDriver churn(sc, ch);
    sc.run_until(from_sec(4));
    r.stats = churn.stats();
  }
  r.events = sc.events_processed();
  std::ostringstream os;
  for (const auto& [name, st] : sc.link_stats()) {
    os << ' ' << name << ' ' << st.offered_packets << ' '
       << st.delivered_packets << ' ' << st.tail_drops;
  }
  r.links = os.str();
  return r;
}

TEST(Churn, ByteIdenticalAcrossShardCounts) {
  const ChurnRun serial = churn_run(1, 150, 11);
  ASSERT_GT(serial.stats.spawned, 0);
  ASSERT_GT(serial.stats.completed, 0);
  for (int shards : {2, 4}) {
    const ChurnRun sharded = churn_run(shards, 150, 11);
    EXPECT_EQ(serial.stats.spawned, sharded.stats.spawned);
    EXPECT_EQ(serial.stats.completed, sharded.stats.completed);
    EXPECT_EQ(serial.stats.skipped, sharded.stats.skipped);
    EXPECT_EQ(serial.stats.peak_concurrent, sharded.stats.peak_concurrent);
    EXPECT_EQ(serial.events, sharded.events);
    EXPECT_EQ(serial.links, sharded.links);
  }
}

TEST(Churn, ArrivalStreamIndependentOfCap) {
  // The cap sheds load but must never shift the RNG stream: total
  // arrivals (spawned + skipped) are a function of (seed, duration)
  // alone.
  const ChurnRun tight = churn_run(1, 20, 11);
  const ChurnRun loose = churn_run(1, 150, 11);
  EXPECT_GT(tight.stats.skipped, loose.stats.skipped);
  EXPECT_EQ(tight.stats.spawned + tight.stats.skipped,
            loose.stats.spawned + loose.stats.skipped);
}

// Full event-stream digest of a churn run: event count, churn counters,
// and per-link packet accounting. Any timing or ordering drift in the
// pooled-arena path shows up here.
std::string churn_digest(int shards, EventEngine engine, double mix_w,
                         double mix_v, double mix_b, double mix_s) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kCdnEdge;
  cfg.topology.arms = 3;
  cfg.seed = 11;
  cfg.shards = shards;
  cfg.engine = engine;
  cfg.planned_flows = 300;
  Scenario sc(cfg);
  ChurnConfig ch;
  ch.arrivals_per_sec = 400;
  ch.mean_size_kb = 48;
  ch.max_concurrent = 150;
  ch.mix_web = mix_w;
  ch.mix_video = mix_v;
  ch.mix_bulk = mix_b;
  ch.mix_scavenger = mix_s;
  ChurnStats st;
  {
    ChurnDriver churn(sc, ch);
    sc.run_until(from_sec(4));
    st = churn.stats();
  }
  std::ostringstream os;
  os << sc.events_processed() << '/' << st.spawned << '/' << st.completed
     << '/' << st.skipped << '/' << st.peak_concurrent;
  for (const auto& [name, ls] : sc.link_stats()) {
    os << '/' << ls.offered_packets << ':' << ls.delivered_packets << ':'
       << ls.tail_drops;
  }
  return os.str();
}

// Digests captured from the tree immediately BEFORE the pooled-arena /
// fast-forward optimizations landed (same config, same seed). Pinning
// them proves flow recycling and window skipping are invisible to the
// simulation — not merely self-consistent across shard counts.
TEST(ChurnGolden, DefaultMixMatchesPreOptimizationDigest) {
  const std::string kPin =
      "283403/271/122/1398/150/56708:32982:23478/10776:10774:0/"
      "12141:12140:0/10033:10032:0";
  for (int shards : {1, 2, 4}) {
    EXPECT_EQ(churn_digest(shards, EventEngine::kTimerWheel, 0.4, 0.3, 0.2,
                           0.1),
              kPin)
        << "shards=" << shards;
  }
  EXPECT_EQ(churn_digest(1, EventEngine::kBinaryHeap, 0.4, 0.3, 0.2, 0.1),
            kPin)
      << "heap engine";
}

TEST(ChurnGolden, WebVideoMixMatchesPreOptimizationDigest) {
  // cubic+bbr only: every completion goes through the recycle path
  // (no PCC flows, which cannot reset in place without allocating).
  const std::string kPin =
      "264279/393/243/1276/150/53610:33099:20261/13047:13047:0/"
      "9032:9031:0/10989:10986:0";
  for (int shards : {1, 4}) {
    EXPECT_EQ(churn_digest(shards, EventEngine::kTimerWheel, 0.6, 0.4, 0.0,
                           0.0),
              kPin)
        << "shards=" << shards;
  }
  EXPECT_EQ(churn_digest(1, EventEngine::kBinaryHeap, 0.6, 0.4, 0.0, 0.0),
            kPin)
      << "heap engine";
}

TEST(Churn, ArenaRecyclesFlowsAtSteadyCap) {
  // Once each class pool warms up, arrivals are served from the arena:
  // in a 4 s run at 400/s the vast majority of admitted flows after the
  // first completions must be recycled, not freshly constructed.
  const ChurnRun r = churn_run(1, 150, 11);
  ASSERT_GT(r.stats.completed, 0);
  EXPECT_GT(r.stats.recycled, 0);
  // Fresh constructions are bounded by pool warm-up: every spawn is
  // either recycled or grew some class pool's population.
  EXPECT_GE(r.stats.recycled, r.stats.spawned - r.stats.peak_concurrent * 4);
}

TEST(Churn, WindowStatsInvariantAcrossShardCounts) {
  // The fast-forward decision depends only on event timestamps, which
  // are shard-invariant — a CDN scenario always runs through the
  // ShardSet window loop (--shards only picks the thread count), so the
  // counters must be identical at every shard setting. A non-sharded
  // topology reports zeros through the same Scenario accessor.
  auto stats_of = [](int shards) {
    ScenarioConfig cfg;
    cfg.topology.kind = TopologyKind::kCdnEdge;
    cfg.topology.arms = 3;
    cfg.seed = 11;
    cfg.shards = shards;
    cfg.planned_flows = 300;
    Scenario sc(cfg);
    ChurnConfig ch;
    ch.arrivals_per_sec = 400;
    ch.mean_size_kb = 48;
    ch.max_concurrent = 150;
    ChurnDriver churn(sc, ch);
    sc.run_until(from_sec(4));
    return sc.shard_window_stats();
  };
  const auto one = stats_of(1);
  EXPECT_GT(one.barrier_windows, 0u);
  for (int shards : {2, 4}) {
    const auto s = stats_of(shards);
    EXPECT_EQ(s.barrier_windows, one.barrier_windows) << shards;
    EXPECT_EQ(s.windows_fast_forwarded, one.windows_fast_forwarded) << shards;
  }
  Scenario dumbbell{ScenarioConfig{}};
  EXPECT_EQ(dumbbell.shard_window_stats().barrier_windows, 0u);
  EXPECT_EQ(dumbbell.shard_window_stats().windows_fast_forwarded, 0u);
}

TEST(IdAllocator, RecyclesSmallestFreedIdFirst) {
  IdAllocator ids(1, 1);
  for (FlowId want = 1; want <= 5; ++want) {
    EXPECT_EQ(ids.allocate(), want);
  }
  ids.release(4);
  ids.release(2);
  EXPECT_EQ(ids.free_count(), 2u);
  EXPECT_EQ(ids.allocate(), 2);  // smallest freed id first
  EXPECT_EQ(ids.allocate(), 4);
  EXPECT_EQ(ids.allocate(), 6);  // pool empty: mint fresh
  EXPECT_EQ(ids.high_water(), 7u);
}

TEST(IdAllocator, StridedArmsNeverCollide) {
  // Arm 1 of a 4-arm CDN mints 2, 6, 10, ...; recycling stays inside
  // the arm's residue class so (id - 1) % arms always recovers the arm.
  IdAllocator ids(2, 4);
  EXPECT_EQ(ids.allocate(), 2);
  EXPECT_EQ(ids.allocate(), 6);
  EXPECT_EQ(ids.allocate(), 10);
  ids.release(6);
  EXPECT_EQ(ids.allocate(), 6);
  EXPECT_EQ(ids.allocate(), 14);
}

// Deterministic recycling end-to-end: complete a flow, release its id,
// and the next allocation hands the same id back; the recycled flow's
// run is byte-identical to a control scenario that used the id directly
// (detach left no state behind, and flow_seed(id) is id-pure).
TEST(Churn, RecycledIdRunsIdenticalToFreshId) {
  auto run = [](bool recycle) {
    ScenarioConfig cfg;
    cfg.seed = 7;
    Scenario sc(cfg);
    if (recycle) {
      // Short-lived predecessor: 30 KB, finishes well before 2 s.
      const FlowId first = sc.allocate_flow_id();
      EXPECT_EQ(first, 1u);
      FlowConfig fc;
      fc.id = first;
      fc.unlimited = false;
      fc.total_bytes = 30'000;
      auto flow = sc.create_flow(0, "cubic", std::move(fc));
      sc.run_until(from_sec(2));
      EXPECT_EQ(flow->receiver().bytes_received(), 30'000);
      flow.reset();  // detaches
      sc.release_flow_id(first);
    } else {
      sc.run_until(from_sec(2));
    }
    const FlowId id = sc.allocate_flow_id();
    EXPECT_EQ(id, 1u);  // recycled (or first-ever) id
    FlowConfig fc;
    fc.id = id;
    fc.unlimited = false;
    fc.total_bytes = 200'000;
    auto flow = sc.create_flow(0, "cubic", std::move(fc));
    sc.run_until(from_sec(5));
    std::ostringstream os;
    const SenderStats& ss = flow->sender().stats();
    os << ss.packets_sent << ' ' << ss.bytes_sent << ' '
       << ss.packets_acked << ' ' << ss.packets_lost << ' '
       << flow->receiver().bytes_received();
    return os.str();
  };
  EXPECT_EQ(run(/*recycle=*/true), run(/*recycle=*/false));
}

// ---------------------------------------------------------------------
// Churn-exposed satellites: demux, detach hygiene, RingBuffer asserts
// ---------------------------------------------------------------------

struct NullSink final : PacketSink {
  void on_packet(const Packet&) override {}
};

TEST(FlowTableDemux, DenseTableScalesPastLegacyLimitWithoutSpill) {
  // The old fixed 4096-entry dense table silently spilled every higher
  // id into the sparse hash map — per-packet hashing on the hot demux
  // path for exactly the big-churn runs that mint high ids.
  Simulator sim(1);
  Topology topo(&sim);
  topo.add_path({{topo.add_link(0, 1, LinkConfig{}, 1)},
                 {topo.add_delay_edge(1, 0, from_ms(1))}});
  NullSink sink;
  for (FlowId id : {FlowId{1}, FlowId{5000}, FlowId{100'000}}) {
    topo.attach_flow(id, &sink, &sink);
  }
  EXPECT_EQ(topo.sparse_flow_count(), 0u);
  EXPECT_GE(topo.dense_capacity(), 100'001u);
  for (FlowId id : {FlowId{1}, FlowId{5000}, FlowId{100'000}}) {
    EXPECT_NE(topo.forward_ingress(id), nullptr);
    topo.detach_flow(id);
  }
}

TEST(FlowTableDemux, ReserveFlowsPresizesGeometrically) {
  Simulator sim(1);
  Topology topo(&sim);
  topo.add_path({{topo.add_link(0, 1, LinkConfig{}, 1)},
                 {topo.add_delay_edge(1, 0, from_ms(1))}});
  topo.reserve_flows(70'000);
  const size_t cap = topo.dense_capacity();
  EXPECT_GE(cap, 70'000u);
  // Power-of-two growth: attaching inside the reservation never grows.
  NullSink sink;
  topo.attach_flow(69'999, &sink, &sink);
  EXPECT_EQ(topo.dense_capacity(), cap);
  EXPECT_EQ(topo.sparse_flow_count(), 0u);
}

TEST(FlowTableDemux, CeilingRoutesOverflowToSparseAndBack) {
  Simulator sim(1);
  Topology topo(&sim);
  topo.add_path({{topo.add_link(0, 1, LinkConfig{}, 1)},
                 {topo.add_delay_edge(1, 0, from_ms(1))}});
  topo.set_dense_ceiling(1024);
  NullSink sink;
  topo.attach_flow(500, &sink, &sink);    // dense
  topo.attach_flow(5000, &sink, &sink);   // above ceiling: sparse
  EXPECT_EQ(topo.sparse_flow_count(), 1u);
  EXPECT_LE(topo.dense_capacity(), 1024u);
  // Sparse flows still demux and detach cleanly.
  EXPECT_NE(topo.forward_ingress(5000), nullptr);
  topo.detach_flow(5000);
  EXPECT_EQ(topo.sparse_flow_count(), 0u);
}

TEST(FlowTableDemux, ChurnStaysDenseOnEveryArm) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kCdnEdge;
  cfg.topology.arms = 3;
  cfg.seed = 11;
  cfg.planned_flows = 400;
  Scenario sc(cfg);
  ChurnConfig ch;
  ch.arrivals_per_sec = 400;
  ch.mean_size_kb = 48;
  ch.max_concurrent = 200;
  ChurnDriver churn(sc, ch);
  sc.run_until(from_sec(3));
  ASSERT_GT(churn.stats().completed, 0);
  for (int a = 0; a < sc.arm_count(); ++a) {
    EXPECT_EQ(sc.arm_topology(a).sparse_flow_count(), 0u) << "arm " << a;
  }
}

TEST(ChurnDetach, InFlightAckOfDetachedFlowStillConsumesItsEvent) {
  // Pin of the send_reverse event-count contract under churn: an ACK in
  // flight when its flow detaches must consume exactly its scheduled
  // reverse-path events (delay-edge hop, then silent egress drop) so a
  // detach never perturbs event counts or RNG draws of the flows that
  // remain.
  Simulator sim(1);
  Topology topo(&sim);
  topo.add_path({{topo.add_link(0, 1, LinkConfig{}, 1)},
                 {topo.add_delay_edge(1, 0, from_ms(5))}});
  NullSink sink;
  topo.attach_flow(1, &sink, &sink);
  Packet ack;
  ack.flow_id = 1;
  ack.size_bytes = 40;
  ack.is_ack = true;
  topo.send_reverse(ack);
  topo.detach_flow(1);
  const uint64_t before = sim.events_processed();
  sim.run_until(from_ms(100));
  // Exactly one event: the delay-edge delivery, dropped at egress.
  EXPECT_EQ(sim.events_processed() - before, 1u);
}

TEST(ChurnDetach, ReattachAfterDetachIsClean) {
  // detach -> re-attach of the same id must behave like a first attach:
  // fresh path assignment and packet delivery to the new sinks.
  Simulator sim(1);
  Topology topo(&sim);
  topo.add_path({{topo.add_link(0, 1, LinkConfig{}, 1)},
                 {topo.add_delay_edge(1, 0, from_ms(1))}});
  struct Counter final : PacketSink {
    int n = 0;
    void on_packet(const Packet&) override { ++n; }
  } old_recv, new_recv;
  NullSink acks;
  topo.attach_flow(1, &old_recv, &acks);
  topo.detach_flow(1);
  topo.attach_flow(1, &new_recv, &acks);
  Packet p;
  p.flow_id = 1;
  p.size_bytes = 1500;
  topo.forward_ingress(1)->on_packet(p);
  sim.run_until(from_ms(100));
  EXPECT_EQ(old_recv.n, 0);  // stale sink must never hear from the id
  EXPECT_EQ(new_recv.n, 1);

  // Sparse variant: the same hygiene must hold for an id living in the
  // sparse spill map (above the dense ceiling).
  topo.set_dense_ceiling(16);
  struct Counter2 final : PacketSink {
    int n = 0;
    void on_packet(const Packet&) override { ++n; }
  } sparse_old, sparse_new;
  topo.attach_flow(5000, &sparse_old, &acks);
  topo.detach_flow(5000);
  topo.attach_flow(5000, &sparse_new, &acks);
  Packet q;
  q.flow_id = 5000;
  q.size_bytes = 1500;
  topo.forward_ingress(5000)->on_packet(q);
  sim.run_until(sim.now() + from_ms(100));
  EXPECT_EQ(sparse_old.n, 0);
  EXPECT_EQ(sparse_new.n, 1);
}

TEST(SenderSlotRing, InitialSlotsIsStorageOnly) {
  // The slot-ring size hint must never leak into timing: runs with a
  // tiny (forcing growth) and a huge initial ring digest identically.
  auto run = [](int slots) {
    ScenarioConfig cfg;
    cfg.seed = 7;
    Scenario sc(cfg);
    const FlowId id = sc.allocate_flow_id();
    FlowConfig fc;
    fc.id = id;
    fc.initial_window_slots = slots;
    auto flow = sc.create_flow(0, "cubic", std::move(fc));
    sc.run_until(from_sec(3));
    std::ostringstream os;
    os << flow->sender().stats().packets_sent << ' '
       << flow->sender().stats().packets_acked << ' '
       << flow->receiver().bytes_received() << ' '
       << sc.sim().events_processed();
    return os.str();
  };
  const std::string tiny = run(1);     // rounds up to the floor of 8
  EXPECT_EQ(tiny, run(256));
  EXPECT_EQ(tiny, run(4096));
}

TEST(RingBufferGuard, BasicFifoCycling) {
  RingBuffer<int> rb;
  for (int i = 0; i < 100; ++i) {
    rb.push_back(i);
    rb.push_back(i + 1000);
    ASSERT_EQ(rb.front(), i);
    rb.pop_front();
    ASSERT_EQ(rb.at(0), i + 1000);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)
TEST(RingBufferGuardDeathTest, EmptyAccessAsserts) {
  // pop_front on empty used to wrap count_ to SIZE_MAX and front() read
  // a default slot — silent UB a churned-out Link queue could hit.
  RingBuffer<int> rb;
  EXPECT_DEATH(rb.front(), "front on empty");
  EXPECT_DEATH(rb.pop_front(), "pop_front on empty");
  rb.push_back(1);
  EXPECT_DEATH(rb.at(1), "out of range");
}
#endif

}  // namespace
}  // namespace proteus
