// Steady-state allocation test: after warm-up, one simulated second of a
// 4-flow dumbbell must perform ZERO heap allocations from the event
// engine and per-packet paths.
//
// This is the runtime enforcement of the zero-allocation design
// (DESIGN.md "Event engine"): InlineCallback events, the timer-wheel's
// pooled node arena, Link's ring buffer, and Sender's in-flight slot
// ring all reach a high-water capacity during warm-up and recycle it
// afterwards. A regression that reintroduces a per-event or
// per-packet allocation (a std::function capture spill, a map node, a
// deque block) fails the EXPECT_EQ(0) below.
//
// The counting operator new/delete replacements are defined in this
// translation unit only, so they observe every allocation in the test
// binary without touching the library. Under sanitizers the interceptors
// own malloc, so the test skips itself there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "harness/factory.h"
#include "sim/dumbbell.h"
#include "sim/simulator.h"
#include "transport/flow.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PROTEUS_ALLOC_COUNTING_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PROTEUS_ALLOC_COUNTING_DISABLED 1
#endif
#endif

#ifndef PROTEUS_ALLOC_COUNTING_DISABLED

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) /
                                       static_cast<std::size_t>(a) *
                                       static_cast<std::size_t>(a))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !PROTEUS_ALLOC_COUNTING_DISABLED

namespace proteus {
namespace {

class AllocRig {
 public:
  explicit AllocRig(EventEngine engine) : sim_(5, engine) {
    DumbbellConfig dc;
    dc.bottleneck.rate = Bandwidth::from_mbps(50);
    dc.bottleneck.prop_delay = from_ms(15);
    dc.reverse_delay = from_ms(15);
    dumbbell_ = std::make_unique<Dumbbell>(&sim_, dc);
    for (FlowId id = 1; id <= 4; ++id) {
      FlowConfig fc;
      fc.id = id;
      fc.start_time = 0;
      fc.unlimited = true;
      // Per-ack RTT sample collection grows a Samples vector forever; the
      // claim under test is about the engine, not the measurement probes.
      fc.collect_rtt = false;
      // cubic is allocation-free per ack/loss (pure arithmetic state), so
      // any counted allocation is attributable to the sim/transport core.
      flows_.push_back(std::make_unique<Flow>(&sim_, dumbbell_.get(), fc,
                                              make_protocol("cubic", id)));
      // The throughput meter appends one bin per simulated second;
      // pre-size it past the end of the run.
      flows_.back()->receiver().meter().reserve_until(from_sec(16));
    }
  }

  Simulator& sim() { return sim_; }
  const Flow& flow(size_t i) const { return *flows_[i]; }

 private:
  Simulator sim_;
  std::unique_ptr<Dumbbell> dumbbell_;
  std::vector<std::unique_ptr<Flow>> flows_;
};

TEST(SteadyStateAllocation, OneSimulatedSecondAllocatesNothing) {
#ifdef PROTEUS_ALLOC_COUNTING_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  for (EventEngine engine :
       {EventEngine::kTimerWheel, EventEngine::kBinaryHeap}) {
    AllocRig rig(engine);
    // Warm-up: slow start, first loss epochs, ring/bucket/heap capacities
    // all reach their high-water marks.
    rig.sim().run_until(from_sec(3));

    const std::uint64_t before =
        g_alloc_calls.load(std::memory_order_relaxed);
    rig.sim().run_until(from_sec(4));
    const std::uint64_t during =
        g_alloc_calls.load(std::memory_order_relaxed) - before;

    // Sanity: the measured second did real work.
    EXPECT_GT(rig.flow(0).sender().stats().packets_sent, 1000);
    EXPECT_EQ(during, 0u)
        << (engine == EventEngine::kTimerWheel ? "wheel" : "heap")
        << " engine allocated during steady state";
  }
#endif
}

// The counting hook itself must observe allocations, or the zero above
// would be vacuous.
TEST(SteadyStateAllocation, CountingHookObservesAllocations) {
#ifdef PROTEUS_ALLOC_COUNTING_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  auto* p = new std::vector<int>(1024);
  const std::uint64_t after = g_alloc_calls.load(std::memory_order_relaxed);
  delete p;
  EXPECT_GE(after - before, 2u);  // the vector object + its storage
#endif
}

}  // namespace
}  // namespace proteus
