// Live UDP backend, end to end over loopback (in-process, two RtLoop
// threads): transfers complete for rate-, window-, and hybrid-paced
// controllers under 20% seeded chaos drop; the handshake retries through
// an initial blackout and fails cleanly with no peer; ACK starvation
// engages the survival machinery (controller-owned for the PCC family,
// driver park/probe for the rest) and recovers; a programmatic interrupt
// (the SIGINT path) stops the run cleanly with telemetry flushed; and a
// live run lands in the same ballpark as the equivalent simulated
// scenario. Runs in verify.sh tier 7 under ASan/UBSan.
#include <fstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "harness/fault_spec.h"
#include "harness/scenario.h"
#include "harness/supervisor.h"
#include "rt/live_run.h"

namespace proteus {
namespace {

ChaosConfig chaos_20mbps(double drop) {
  ChaosConfig c;
  c.rate_mbps = 20.0;
  c.one_way_delay = from_ms(2);
  c.drop = drop;
  c.seed = 11;
  return c;
}

LiveRunConfig base_config(const std::string& cc) {
  LiveRunConfig cfg;
  cfg.cc = cc;
  cfg.seed = 5;
  cfg.transfer_bytes = 150'000;
  cfg.duration = from_sec(30);  // safety cap, not the expected path
  cfg.stopper = [] { return false; };  // isolate from the global flag
  return cfg;
}

class RtLiveTest : public ::testing::Test {
 protected:
  void SetUp() override { clear_interrupt(); }
  void TearDown() override { clear_interrupt(); }
};

TEST_F(RtLiveTest, TransferCompletesUnderChaosDrop) {
  // The acceptance matrix: a rate-paced scavenger, a window-only loss
  // controller, and a pacing+window controller, each through 20% drop.
  for (const char* cc : {"proteus-s", "cubic", "bbr"}) {
    LiveRunConfig cfg = base_config(cc);
    cfg.chaos = chaos_20mbps(0.2);
    const LiveRunResult r = run_live_loopback(cfg);
    EXPECT_TRUE(r.ok) << cc << ": " << r.error;
    EXPECT_EQ(r.sender_state, RtSenderState::kDone) << cc;
    EXPECT_GE(r.sender.bytes_delivered, cfg.transfer_bytes) << cc;
    EXPECT_GT(r.sender.packets_lost, 0) << cc;  // 20% drop must bite
    EXPECT_GT(r.data_chaos.dropped_random, 0) << cc;
    // 20% drop applies to the handshake too; retries are legitimate.
    EXPECT_GE(r.sender.handshake_attempts, 1) << cc;
    EXPECT_EQ(r.receiver.parse_rejects, 0) << cc;
  }
}

TEST_F(RtLiveTest, HandshakeRetriesThroughInitialBlackout) {
  LiveRunConfig cfg = base_config("proteus-s");
  cfg.transfer_bytes = 60'000;
  cfg.chaos = chaos_20mbps(0.0);
  const FaultParseResult faults = parse_faults("blackout@0:0.3");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.chaos.faults = faults.faults;
  const LiveRunResult r = run_live_loopback(cfg);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.sender.handshake_attempts, 1);
  EXPECT_GE(r.sender.bytes_delivered, cfg.transfer_bytes);
}

TEST_F(RtLiveTest, HandshakeFailsCleanlyWithNoPeer) {
  LiveRunConfig cfg = base_config("cubic");
  cfg.sender.handshake_retries = 2;
  cfg.sender.handshake_rto = from_ms(20);
  cfg.sender.handshake_rto_max = from_ms(40);
  // Nothing listens on this port (we bind it ourselves to reserve it,
  // then point the sender at a different closed one). Simpler: a port in
  // the dynamic range with no receiver running.
  const LiveRunResult r = run_live_sender(cfg, "127.0.0.1", 9);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.sender_state, RtSenderState::kFailed);
  EXPECT_NE(r.error.find("handshake"), std::string::npos) << r.error;
  EXPECT_EQ(r.sender.handshake_attempts, 3);  // initial + 2 retries
}

TEST_F(RtLiveTest, SurvivalEngagesAndRecoversDuringBlackout) {
  // proteus-s owns its survival response (survival_mode config); the
  // driver defers and the controller's entry counter must tick during a
  // mid-transfer blackout longer than its starvation timeout.
  LiveRunConfig cfg = base_config("proteus-s");
  cfg.transfer_bytes = 0;  // run for the duration
  cfg.duration = from_sec(3);
  cfg.chaos = chaos_20mbps(0.0);
  const FaultParseResult faults = parse_faults("blackout@1:0.8");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.chaos.faults = faults.faults;
  const LiveRunResult r = run_live_loopback(cfg);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.cc_owns_survival);
  EXPECT_GE(r.survival_entries, 1u);
  EXPECT_GT(r.data_chaos.dropped_blackout, 0);
  // Recovery: deliveries continued after the blackout window [1s, 1.8s].
  // 1s of pre-blackout traffic alone cannot account for the total if the
  // post-blackout second kept delivering; require comfortably more than
  // the blackout-era floor.
  EXPECT_GT(r.sender.packets_acked, 100);
}

TEST_F(RtLiveTest, DriverParksAndProbesForWindowControllers) {
  // cubic has no survival machinery: the driver's watchdog must park it
  // and re-probe with backoff until the path returns.
  LiveRunConfig cfg = base_config("cubic");
  cfg.transfer_bytes = 0;
  cfg.duration = from_sec(3);
  cfg.chaos = chaos_20mbps(0.0);
  const FaultParseResult faults = parse_faults("blackout@1:0.8");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.chaos.faults = faults.faults;
  const LiveRunResult r = run_live_loopback(cfg);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.cc_owns_survival);
  EXPECT_GE(r.starvation_episodes, 1);
  EXPECT_GE(r.probe_packets, 1);
  EXPECT_GT(r.sender.packets_acked, 100);  // recovered after the window
}

TEST_F(RtLiveTest, InterruptStopsCleanlyAndFlushesTelemetry) {
  // The SIGINT path, driven programmatically: request_interrupt() is
  // exactly what the signal handler sets, and the default stopper (used
  // when cfg.stopper is empty) polls it.
  const std::string dir = ::testing::TempDir() + "rt_live_telemetry";
  LiveRunConfig cfg;
  cfg.cc = "proteus-s";
  cfg.seed = 5;
  cfg.transfer_bytes = 0;
  cfg.duration = from_sec(30);
  cfg.chaos = chaos_20mbps(0.0);
  cfg.telemetry_dir = dir;
  cfg.run_label = "interrupt";

  LiveRunResult r;
  std::thread runner{[&] { r = run_live_loopback(cfg); }};
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  request_interrupt();
  runner.join();
  clear_interrupt();

  EXPECT_TRUE(r.interrupted);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.sender.packets_acked, 0);
  // Telemetry flushed on the way out: a JSONL with at least one MI
  // record and the metrics CSV.
  ASSERT_FALSE(r.telemetry_jsonl.empty());
  std::ifstream jsonl(r.telemetry_jsonl);
  ASSERT_TRUE(jsonl.good());
  std::string line;
  int lines = 0;
  while (std::getline(jsonl, line)) {
    if (!line.empty()) ++lines;
  }
  EXPECT_GT(lines, 0);
  ASSERT_FALSE(r.telemetry_metrics.empty());
  EXPECT_TRUE(std::ifstream(r.telemetry_metrics).good());
}

TEST_F(RtLiveTest, CalibrationLiveMatchesSimBallpark) {
  // Smoke, not a benchmark: the live loopback and the simulated dumbbell
  // with the same rate/RTT/buffer must land in the same ballpark. The
  // band is deliberately generous — real wall-clock jitter reads as RTT
  // deviation to a scavenger utility, so live proteus-s sits well below
  // its simulated self (and further below under sanitizers). The smoke
  // catches catastrophic disagreement (zero rate, order-of-magnitude
  // blowups), not emulation fidelity.
  LiveRunConfig cfg = base_config("proteus-s");
  cfg.transfer_bytes = 0;
  cfg.duration = from_sec(6);
  cfg.chaos.rate_mbps = 20.0;
  cfg.chaos.one_way_delay = from_ms(5);
  cfg.chaos.queue_bytes = 62'500;
  const LiveRunResult live = run_live_loopback(cfg);
  ASSERT_TRUE(live.ok) << live.error;

  ScenarioConfig sim_cfg;
  sim_cfg.bandwidth_mbps = 20.0;
  sim_cfg.rtt_ms = 10.0;
  sim_cfg.buffer_bytes = 62'500;
  sim_cfg.seed = cfg.seed;
  Scenario scenario{sim_cfg};
  Flow& flow = scenario.add_flow("proteus-s", 0);
  scenario.run_until(from_sec(6));
  const double sim_mbps =
      flow.mean_throughput_mbps(from_sec(1), from_sec(6));

  ASSERT_GT(sim_mbps, 0.5);
  ASSERT_GT(live.achieved_mbps, 0.25);
  const double ratio = live.achieved_mbps / sim_mbps;
  EXPECT_GT(ratio, 1.0 / 16.0) << "live=" << live.achieved_mbps
                               << " sim=" << sim_mbps;
  EXPECT_LT(ratio, 4.0) << "live=" << live.achieved_mbps
                        << " sim=" << sim_mbps;
}

}  // namespace
}  // namespace proteus
