// Tests for the run supervisor (harness/supervisor.h) and its checkpoint
// journal (harness/checkpoint.h): payload codec exactness, watchdogs,
// retries with deterministic sub-seeds, repro bundles, interrupt handling,
// and the headline guarantee — a sweep killed mid-run and resumed with
// --resume produces a byte-identical results CSV.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "harness/checkpoint.h"
#include "harness/supervisor.h"

namespace proteus {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "supervisor_test_" + name;
}

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
}

// ---- Payload codec -----------------------------------------------------

TEST(Checkpoint, DoubleCodecRoundTripsExactly) {
  const std::vector<double> values = {
      0.0,
      -0.0,
      1.0,
      -1.5,
      3.141592653589793,
      1e-300,
      -1e300,
      std::numeric_limits<double>::min(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
  };
  const std::vector<double> decoded = decode_doubles(encode_doubles(values));
  ASSERT_EQ(decoded.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    // Bit-exact, including the sign of zero.
    EXPECT_EQ(std::memcmp(&decoded[i], &values[i], sizeof(double)), 0)
        << "value " << values[i];
  }
}

TEST(Checkpoint, DoubleCodecHandlesNanAndEmpty) {
  const std::vector<double> decoded =
      decode_doubles(encode_doubles({std::nan("")}));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_TRUE(std::isnan(decoded[0]));

  EXPECT_EQ(encode_doubles({}), "");
  EXPECT_TRUE(decode_doubles("").empty());
}

// ---- Journal write/load ------------------------------------------------

TEST(Checkpoint, JournalWritesAndLoads) {
  const std::string path = tmp_path("journal_basic.jsonl");
  std::remove(path.c_str());
  {
    CheckpointJournal j;
    ASSERT_TRUE(j.open(path, {"mysweep", 3}, /*keep_existing=*/false));
    j.append({0, "ok", 1, encode_doubles({1.5}), ""});
    j.append({2, "timeout", 3, "", "wall-clock watchdog fired"});
  }
  const CheckpointLoadResult loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.found);
  EXPECT_EQ(loaded.header.sweep, "mysweep");
  EXPECT_EQ(loaded.header.points, 3);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].point, 0);
  EXPECT_EQ(loaded.entries[0].status, "ok");
  EXPECT_EQ(loaded.entries[0].attempts, 1);
  EXPECT_EQ(decode_doubles(loaded.entries[0].payload),
            (std::vector<double>{1.5}));
  EXPECT_EQ(loaded.entries[1].point, 2);
  EXPECT_EQ(loaded.entries[1].status, "timeout");
  EXPECT_EQ(loaded.entries[1].error, "wall-clock watchdog fired");
}

TEST(Checkpoint, MissingFileYieldsNotFound) {
  EXPECT_FALSE(load_checkpoint(tmp_path("does_not_exist.jsonl")).found);
}

TEST(Checkpoint, TruncatedTrailingLineIsSkipped) {
  // The kill -9 case: the process died while writing the last line. The
  // loader must keep every complete entry and drop the torn one.
  const std::string path = tmp_path("journal_truncated.jsonl");
  std::remove(path.c_str());
  {
    CheckpointJournal j;
    ASSERT_TRUE(j.open(path, {"s", 5}, false));
    j.append({0, "ok", 1, encode_doubles({1.0}), ""});
    j.append({1, "ok", 1, encode_doubles({2.0}), ""});
  }
  std::string content = read_file(path);
  ASSERT_FALSE(content.empty());
  // Append a torn line (no trailing newline, cut mid-field).
  write_file(path, content + "{\"point\":2,\"status\":\"o");
  const CheckpointLoadResult loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.found);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[1].point, 1);
}

TEST(Checkpoint, EscapesSpecialCharactersInErrors) {
  const std::string path = tmp_path("journal_escape.jsonl");
  std::remove(path.c_str());
  const std::string nasty = "quote \" backslash \\ newline \n tab \t end";
  {
    CheckpointJournal j;
    ASSERT_TRUE(j.open(path, {"s", 1}, false));
    j.append({0, "error", 2, "", nasty});
  }
  const CheckpointLoadResult loaded = load_checkpoint(path);
  ASSERT_TRUE(loaded.found);
  ASSERT_EQ(loaded.entries.size(), 1u);
  EXPECT_EQ(loaded.entries[0].error, nasty);
}

// ---- RunContext --------------------------------------------------------

TEST(Supervisor, AttemptSeedIsBaseOnFirstAttemptAndFreshOnRetries) {
  const RunContext a0(0, 0.0, 0.0, 8);
  const RunContext a1(1, 0.0, 0.0, 8);
  const RunContext a2(2, 0.0, 0.0, 8);
  EXPECT_EQ(a0.attempt_seed(17), 17u);  // bit-identical happy path
  EXPECT_NE(a1.attempt_seed(17), 17u);
  EXPECT_NE(a2.attempt_seed(17), a1.attempt_seed(17));
  // Deterministic: same (base, attempt) -> same seed.
  EXPECT_EQ(a1.attempt_seed(17), RunContext(1, 0.0, 0.0, 8).attempt_seed(17));
}

TEST(Supervisor, WallClockWatchdogFires) {
  RunContext ctx(0, 0.05, 0.0, 8);
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          ctx.poll();
        }
      },
      RunTimeoutError);
  EXPECT_TRUE(ctx.cancelled());
}

TEST(Supervisor, SimTimeWatchdogFires) {
  RunContext ctx(0, 0.0, 2.0, 8);
  EXPECT_NO_THROW(ctx.poll(from_sec(1)));
  EXPECT_NO_THROW(ctx.poll(from_sec(2)));
  EXPECT_THROW(ctx.poll(from_sec(2) + 1), RunTimeoutError);
}

TEST(Supervisor, SupervisedRunUntilEnforcesSimBudget) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 10.0;
  cfg.seed = 7;
  Scenario sc(cfg);
  sc.add_flow("cubic", 0);
  RunContext ctx(0, 0.0, 1.0, 8);
  EXPECT_THROW(supervised_run_until(sc, from_sec(5), &ctx), RunTimeoutError);
  EXPECT_LT(sc.sim().now(), from_sec(2));
  EXPECT_FALSE(ctx.trace_events().empty());
}

TEST(Supervisor, PollThrowsInterruptedWhenFlagSet) {
  clear_interrupt();
  RunContext ctx(0, 0.0, 0.0, 8);
  EXPECT_NO_THROW(ctx.poll());
  request_interrupt();
  EXPECT_THROW(ctx.poll(), InterruptedError);
  EXPECT_TRUE(ctx.cancelled());
  clear_interrupt();
}

TEST(Supervisor, TraceRingKeepsLastEvents) {
  RunContext ctx(0, 0.0, 0.0, 3);
  for (int i = 0; i < 7; ++i) ctx.trace("event " + std::to_string(i));
  const std::vector<std::string>& t = ctx.trace_events();
  ASSERT_EQ(t.size(), 3u);
  // Ring contents are the last 3 events (rotation order is internal).
  for (const std::string& e : t) {
    EXPECT_TRUE(e == "event 4" || e == "event 5" || e == "event 6") << e;
  }
}

// ---- run_supervised: happy path, failures, retries ---------------------

SupervisorConfig fast_config() {
  SupervisorConfig cfg;
  cfg.jobs = 1;
  cfg.backoff_base_sec = 0.0;  // tests never wait between retries
  cfg.backoff_max_sec = 0.0;
  return cfg;
}

std::vector<SupervisedTask<double>> squares_sweep(int n) {
  std::vector<SupervisedTask<double>> tasks;
  for (int i = 0; i < n; ++i) {
    RunInfo info;
    info.name = "square i=" + std::to_string(i);
    tasks.push_back({[i](RunContext&) { return i * 1.25; }, info});
  }
  return tasks;
}

TEST(Supervisor, HappyPathSweep) {
  clear_interrupt();
  const SupervisedSweep<double> sweep =
      run_supervised(squares_sweep(5), fast_config(), scalar_codec());
  ASSERT_EQ(sweep.results.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sweep.results[static_cast<size_t>(i)], i * 1.25);
    EXPECT_EQ(sweep.statuses[static_cast<size_t>(i)].status, RunStatus::kOk);
    EXPECT_EQ(sweep.statuses[static_cast<size_t>(i)].attempts, 1);
    EXPECT_FALSE(sweep.statuses[static_cast<size_t>(i)].from_checkpoint);
  }
  EXPECT_TRUE(sweep.ok());
  EXPECT_EQ(sweep.exit_code(), 0);
  EXPECT_EQ(sweep.manifest(), "");
}

TEST(Supervisor, FailingPointDegradesNotAborts) {
  clear_interrupt();
  SupervisorConfig cfg = fast_config();
  cfg.jobs = 4;
  cfg.retries = 2;
  std::atomic<int> bad_runs{0};
  std::vector<SupervisedTask<double>> tasks = squares_sweep(6);
  tasks[3].run = [&bad_runs](RunContext&) -> double {
    bad_runs.fetch_add(1);
    throw std::runtime_error("injected failure");
  };
  const SupervisedSweep<double> sweep =
      run_supervised(std::move(tasks), cfg, scalar_codec());
  EXPECT_EQ(bad_runs.load(), 3);  // first attempt + 2 retries
  EXPECT_EQ(sweep.statuses[3].status, RunStatus::kError);
  EXPECT_EQ(sweep.statuses[3].attempts, 3);
  EXPECT_NE(sweep.statuses[3].error.find("injected failure"),
            std::string::npos);
  for (int i : {0, 1, 2, 4, 5}) {
    EXPECT_EQ(sweep.statuses[static_cast<size_t>(i)].status, RunStatus::kOk);
    EXPECT_EQ(sweep.results[static_cast<size_t>(i)], i * 1.25);
  }
  EXPECT_EQ(sweep.failures(), 1u);
  EXPECT_EQ(sweep.exit_code(), 3);
  EXPECT_NE(sweep.manifest().find("point 3"), std::string::npos);
  EXPECT_NE(sweep.manifest().find("injected failure"), std::string::npos);
}

TEST(Supervisor, FlakyPointSucceedsOnRetryWithFreshSeed) {
  clear_interrupt();
  SupervisorConfig cfg = fast_config();
  cfg.retries = 3;
  std::vector<uint64_t> seeds_seen;
  std::vector<SupervisedTask<double>> tasks;
  RunInfo info;
  info.name = "flaky";
  info.seed = 99;
  tasks.push_back({[&seeds_seen](RunContext& ctx) -> double {
                     seeds_seen.push_back(ctx.attempt_seed(99));
                     if (ctx.attempt() < 2) throw std::runtime_error("flake");
                     return 42.0;
                   },
                   info});
  const SupervisedSweep<double> sweep =
      run_supervised(std::move(tasks), cfg, scalar_codec());
  EXPECT_EQ(sweep.statuses[0].status, RunStatus::kOk);
  EXPECT_EQ(sweep.statuses[0].attempts, 3);
  EXPECT_EQ(sweep.results[0], 42.0);
  ASSERT_EQ(seeds_seen.size(), 3u);
  EXPECT_EQ(seeds_seen[0], 99u);          // attempt 0: caller's seed
  EXPECT_NE(seeds_seen[1], seeds_seen[0]);  // retries: fresh sub-streams
  EXPECT_NE(seeds_seen[2], seeds_seen[1]);
  EXPECT_TRUE(sweep.ok());
}

TEST(Supervisor, RetrySeedSequenceIsIdenticalAcrossJobs) {
  // Forced-failure parking-lot points: every point builds a real
  // multi-hop scenario, advances it under supervision, records the
  // attempt seed, and fails its first two attempts. The splitmix64
  // retry sub-seed chain is a pure function of (base seed, attempt), so
  // the per-point seed sequences must not depend on worker scheduling.
  auto run_sweep = [](int jobs) {
    clear_interrupt();
    const int n = 6;
    std::vector<std::vector<uint64_t>> seeds(n);  // slot per point: no races
    std::vector<SupervisedTask<double>> tasks;
    for (int i = 0; i < n; ++i) {
      RunInfo info;
      info.name = "parkinglot " + std::to_string(i);
      info.seed = static_cast<uint64_t>(100 + i);
      tasks.push_back({[i, &seeds](RunContext& ctx) -> double {
                         const uint64_t base = static_cast<uint64_t>(100 + i);
                         const uint64_t seed = ctx.attempt_seed(base);
                         seeds[static_cast<size_t>(i)].push_back(seed);
                         ScenarioConfig cfg;
                         cfg.seed = seed;
                         cfg.topology.kind = TopologyKind::kParkingLot;
                         cfg.topology.arms = 3;
                         Scenario sc(cfg);
                         sc.add_flow("cubic", 0);
                         supervised_run_until(sc, from_ms(200), &ctx);
                         if (ctx.attempt() < 2) {
                           throw std::runtime_error("forced failure");
                         }
                         return sc.flows().front()->mean_throughput_mbps(
                             0, from_ms(200));
                       },
                       info});
    }
    SupervisorConfig cfg = fast_config();
    cfg.jobs = jobs;
    cfg.retries = 2;
    const SupervisedSweep<double> sweep =
        run_supervised(std::move(tasks), cfg, scalar_codec());
    EXPECT_TRUE(sweep.ok());
    return std::make_pair(seeds, sweep.results);
  };

  const auto [seeds1, results1] = run_sweep(1);
  const auto [seeds4, results4] = run_sweep(4);

  ASSERT_EQ(seeds1.size(), seeds4.size());
  for (size_t i = 0; i < seeds1.size(); ++i) {
    ASSERT_EQ(seeds1[i].size(), 3u) << "point " << i;  // 1 try + 2 retries
    EXPECT_EQ(seeds1[i], seeds4[i]) << "point " << i;
    // Attempt 0 is the caller's base seed; retries are fresh sub-streams.
    EXPECT_EQ(seeds1[i][0], 100 + i);
    EXPECT_NE(seeds1[i][1], seeds1[i][0]);
    EXPECT_NE(seeds1[i][2], seeds1[i][1]);
  }
  // Same attempt seeds -> same simulations -> identical payloads.
  EXPECT_EQ(results1, results4);
}

TEST(Supervisor, CooperativeHangIsTimedOutAndRetried) {
  clear_interrupt();
  SupervisorConfig cfg = fast_config();
  cfg.retries = 1;
  cfg.run_timeout_sec = 0.05;
  std::vector<SupervisedTask<double>> tasks = squares_sweep(3);
  tasks[1].run = [](RunContext& ctx) -> double {
    for (;;) {  // simulated livelock; only the watchdog stops it
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ctx.poll();
    }
  };
  const SupervisedSweep<double> sweep =
      run_supervised(std::move(tasks), cfg, scalar_codec());
  EXPECT_EQ(sweep.statuses[1].status, RunStatus::kTimeout);
  EXPECT_EQ(sweep.statuses[1].attempts, 2);
  EXPECT_NE(sweep.statuses[1].error.find("watchdog"), std::string::npos);
  EXPECT_EQ(sweep.statuses[0].status, RunStatus::kOk);
  EXPECT_EQ(sweep.statuses[2].status, RunStatus::kOk);
  EXPECT_EQ(sweep.exit_code(), 3);
}

TEST(Supervisor, SimWatchdogProducesTimeoutStatus) {
  clear_interrupt();
  SupervisorConfig cfg = fast_config();
  cfg.sim_timeout_sec = 1.0;
  std::vector<SupervisedTask<double>> tasks;
  RunInfo info;
  info.name = "runaway-sim";
  tasks.push_back({[](RunContext& ctx) -> double {
                     ScenarioConfig sc_cfg;
                     sc_cfg.bandwidth_mbps = 10.0;
                     sc_cfg.seed = 3;
                     Scenario sc(sc_cfg);
                     sc.add_flow("cubic", 0);
                     supervised_run_until(sc, from_sec(30), &ctx);
                     return 1.0;
                   },
                   info});
  const SupervisedSweep<double> sweep =
      run_supervised(std::move(tasks), cfg, scalar_codec());
  EXPECT_EQ(sweep.statuses[0].status, RunStatus::kTimeout);
  EXPECT_NE(sweep.statuses[0].error.find("simulated-time"),
            std::string::npos);
}

TEST(Supervisor, InvariantViolationGetsItsOwnStatus) {
  clear_interrupt();
  std::vector<SupervisedTask<double>> tasks = squares_sweep(2);
  tasks[0].run = [](RunContext&) -> double {
    throw InvariantViolationError("packet conservation violated");
  };
  const SupervisedSweep<double> sweep =
      run_supervised(std::move(tasks), fast_config(), scalar_codec());
  EXPECT_EQ(sweep.statuses[0].status, RunStatus::kInvariantViolation);
  EXPECT_EQ(sweep.statuses[1].status, RunStatus::kOk);
  EXPECT_NE(sweep.manifest().find("invariant"), std::string::npos);
}

// ---- Repro bundles -----------------------------------------------------

TEST(Supervisor, ReproBundleWrittenOnFinalFailure) {
  clear_interrupt();
  SupervisorConfig cfg = fast_config();
  cfg.retries = 1;
  cfg.sweep_name = "bundle test";  // sanitized into the filename
  cfg.bundle_dir = tmp_path("bundles");
  std::vector<SupervisedTask<double>> tasks = squares_sweep(2);
  RunInfo info;
  info.name = "doomed point";
  info.cli = "./bench --only=1 --jobs=1";
  info.seed = 4242;
  info.scenario = "bw=50Mbps rtt=30ms";
  info.faults = "blackout@5:2";
  tasks[1] = {[](RunContext& ctx) -> double {
                ctx.trace("custom trace event before the crash");
                throw std::runtime_error("kaboom");
              },
              info};
  const SupervisedSweep<double> sweep =
      run_supervised(std::move(tasks), cfg, scalar_codec());
  ASSERT_FALSE(sweep.statuses[1].bundle_path.empty());
  const std::string bundle = read_file(sweep.statuses[1].bundle_path);
  ASSERT_FALSE(bundle.empty());
  EXPECT_NE(bundle.find("name: doomed point"), std::string::npos);
  EXPECT_NE(bundle.find("status: error"), std::string::npos);
  EXPECT_NE(bundle.find("attempts: 2"), std::string::npos);
  EXPECT_NE(bundle.find("error: kaboom"), std::string::npos);
  EXPECT_NE(bundle.find("seed: 4242"), std::string::npos);
  EXPECT_NE(bundle.find("cli: ./bench --only=1 --jobs=1"), std::string::npos);
  EXPECT_NE(bundle.find("faults: blackout@5:2"), std::string::npos);
  EXPECT_NE(bundle.find("custom trace event before the crash"),
            std::string::npos);
  // Successful points never get a bundle.
  EXPECT_TRUE(sweep.statuses[0].bundle_path.empty());
  // The manifest points at the bundle.
  EXPECT_NE(sweep.manifest().find(sweep.statuses[1].bundle_path),
            std::string::npos);
}

// ---- Interrupts --------------------------------------------------------

TEST(Supervisor, InterruptSkipsRemainingPoints) {
  clear_interrupt();
  SupervisorConfig cfg = fast_config();  // jobs=1: deterministic order
  std::vector<SupervisedTask<double>> tasks = squares_sweep(5);
  tasks[2].run = [](RunContext& ctx) -> double {
    request_interrupt();  // as if Ctrl-C arrived mid-run
    ctx.poll();
    return 0.0;  // unreachable
  };
  const SupervisedSweep<double> sweep =
      run_supervised(std::move(tasks), cfg, scalar_codec());
  EXPECT_EQ(sweep.statuses[0].status, RunStatus::kOk);
  EXPECT_EQ(sweep.statuses[1].status, RunStatus::kOk);
  EXPECT_EQ(sweep.statuses[2].status, RunStatus::kSkipped);
  EXPECT_EQ(sweep.statuses[3].status, RunStatus::kSkipped);
  EXPECT_EQ(sweep.statuses[4].status, RunStatus::kSkipped);
  EXPECT_TRUE(sweep.interrupted);
  EXPECT_EQ(sweep.exit_code(), 130);
  EXPECT_NE(sweep.manifest().find("skipped"), std::string::npos);
  clear_interrupt();
}

// ---- Checkpoint/resume end to end --------------------------------------

std::vector<SupervisedTask<double>> seeded_sweep(int n,
                                                 std::atomic<int>* runs) {
  std::vector<SupervisedTask<double>> tasks;
  for (int i = 0; i < n; ++i) {
    RunInfo info;
    info.name = "point " + std::to_string(i);
    info.seed = static_cast<uint64_t>(i);
    tasks.push_back({[i, runs](RunContext& ctx) {
                       if (runs) runs->fetch_add(1);
                       // Depends on the attempt seed so a wrong resume
                       // (e.g. re-running with a different seed) shows up
                       // in the payload bytes.
                       return static_cast<double>(
                                  ctx.attempt_seed(static_cast<uint64_t>(i))) *
                                  0.5 +
                              i / 3.0;
                     },
                     info});
  }
  return tasks;
}

TEST(Supervisor, ResumeAfterKillProducesByteIdenticalCsv) {
  clear_interrupt();
  const std::string journal = tmp_path("resume_kill.jsonl");
  const std::string csv_full = tmp_path("resume_full.csv");
  const std::string csv_resumed = tmp_path("resume_resumed.csv");
  std::remove(journal.c_str());

  // Uninterrupted reference run, journaling as it goes.
  SupervisorConfig cfg = fast_config();
  cfg.sweep_name = "resume-sweep";
  cfg.checkpoint_path = journal;
  cfg.csv_path = csv_full;
  run_supervised(seeded_sweep(6, nullptr), cfg, scalar_codec());
  const std::string full_csv = read_file(csv_full);
  ASSERT_FALSE(full_csv.empty());

  // Simulate kill -9 mid-sweep: keep the header + 3 complete entries and
  // tear the 4th entry mid-line.
  const std::string full_journal = read_file(journal);
  std::vector<size_t> newlines;
  for (size_t p = 0; p < full_journal.size(); ++p) {
    if (full_journal[p] == '\n') newlines.push_back(p);
  }
  ASSERT_GE(newlines.size(), 5u);  // header + >=4 entries
  const std::string torn =
      full_journal.substr(0, newlines[3] + 1) + "{\"point\":3,\"sta";
  write_file(journal, torn);

  // Resume: only the 3 unfinished points run again.
  std::atomic<int> runs{0};
  SupervisorConfig rcfg = cfg;
  rcfg.csv_path = csv_resumed;
  rcfg.resume = true;
  const SupervisedSweep<double> resumed =
      run_supervised(seeded_sweep(6, &runs), rcfg, scalar_codec());
  EXPECT_EQ(runs.load(), 3);
  EXPECT_TRUE(resumed.statuses[0].from_checkpoint);
  EXPECT_TRUE(resumed.statuses[1].from_checkpoint);
  EXPECT_TRUE(resumed.statuses[2].from_checkpoint);
  EXPECT_FALSE(resumed.statuses[3].from_checkpoint);
  EXPECT_TRUE(resumed.ok());

  // The acceptance criterion: byte-identical CSV.
  const std::string resumed_csv = read_file(csv_resumed);
  EXPECT_EQ(resumed_csv, full_csv);
}

TEST(Supervisor, InterruptThenResumeMatchesUninterruptedRun) {
  clear_interrupt();
  const std::string journal = tmp_path("resume_intr.jsonl");
  const std::string csv_full = tmp_path("resume_intr_full.csv");
  const std::string csv_resumed = tmp_path("resume_intr_resumed.csv");
  std::remove(journal.c_str());

  SupervisorConfig cfg = fast_config();
  cfg.sweep_name = "intr-sweep";
  cfg.csv_path = csv_full;
  run_supervised(seeded_sweep(5, nullptr), cfg, scalar_codec());
  const std::string full_csv = read_file(csv_full);

  // Interrupt after two points complete (jobs=1 runs in order).
  SupervisorConfig icfg = cfg;
  icfg.csv_path.clear();
  icfg.checkpoint_path = journal;
  std::vector<SupervisedTask<double>> tasks = seeded_sweep(5, nullptr);
  const auto original = tasks[2].run;
  tasks[2].run = [original](RunContext& ctx) -> double {
    request_interrupt();
    ctx.poll();
    return original(ctx);
  };
  const SupervisedSweep<double> interrupted =
      run_supervised(std::move(tasks), icfg, scalar_codec());
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.exit_code(), 130);
  clear_interrupt();

  // Resume to completion; the journal holds points 0 and 1.
  std::atomic<int> runs{0};
  SupervisorConfig rcfg = cfg;
  rcfg.checkpoint_path = journal;
  rcfg.resume = true;
  rcfg.csv_path = csv_resumed;
  const SupervisedSweep<double> resumed =
      run_supervised(seeded_sweep(5, &runs), rcfg, scalar_codec());
  EXPECT_EQ(runs.load(), 3);
  EXPECT_TRUE(resumed.ok());
  EXPECT_EQ(read_file(csv_resumed), full_csv);
}

TEST(Supervisor, ResumeRefusesMismatchedJournal) {
  clear_interrupt();
  const std::string journal = tmp_path("resume_mismatch.jsonl");
  std::remove(journal.c_str());
  SupervisorConfig cfg = fast_config();
  cfg.sweep_name = "sweep-a";
  cfg.checkpoint_path = journal;
  run_supervised(squares_sweep(3), cfg, scalar_codec());

  SupervisorConfig other = cfg;
  other.sweep_name = "sweep-b";
  other.resume = true;
  EXPECT_THROW(run_supervised(squares_sweep(3), other, scalar_codec()),
               std::runtime_error);

  SupervisorConfig wrong_size = cfg;
  wrong_size.resume = true;
  EXPECT_THROW(run_supervised(squares_sweep(4), wrong_size, scalar_codec()),
               std::runtime_error);
}

TEST(Supervisor, ResumeWithMissingJournalRunsFresh) {
  clear_interrupt();
  const std::string journal = tmp_path("resume_missing.jsonl");
  std::remove(journal.c_str());
  SupervisorConfig cfg = fast_config();
  cfg.sweep_name = "fresh";
  cfg.checkpoint_path = journal;
  cfg.resume = true;  // --resume on a first run: journal doesn't exist yet
  const SupervisedSweep<double> sweep =
      run_supervised(squares_sweep(3), cfg, scalar_codec());
  EXPECT_TRUE(sweep.ok());
  for (const PointStatus& s : sweep.statuses) {
    EXPECT_FALSE(s.from_checkpoint);
  }
  // And the journal is now complete for a later resume.
  EXPECT_EQ(load_checkpoint(journal).entries.size(), 3u);
}

TEST(Supervisor, FailedPointsAreRetriedOnResume) {
  clear_interrupt();
  const std::string journal = tmp_path("resume_failed.jsonl");
  std::remove(journal.c_str());
  SupervisorConfig cfg = fast_config();
  cfg.sweep_name = "flaky-resume";
  cfg.checkpoint_path = journal;

  // First run: point 1 fails and is journaled as a failure.
  std::vector<SupervisedTask<double>> tasks = squares_sweep(3);
  tasks[1].run = [](RunContext&) -> double {
    throw std::runtime_error("transient");
  };
  const SupervisedSweep<double> first =
      run_supervised(std::move(tasks), cfg, scalar_codec());
  EXPECT_EQ(first.exit_code(), 3);

  // Resume: the failed point re-runs (and now succeeds); ok points don't.
  std::atomic<int> runs{0};
  std::vector<SupervisedTask<double>> retry = squares_sweep(3);
  for (auto& t : retry) {
    const auto fn = t.run;
    t.run = [fn, &runs](RunContext& ctx) {
      runs.fetch_add(1);
      return fn(ctx);
    };
  }
  SupervisorConfig rcfg = cfg;
  rcfg.resume = true;
  const SupervisedSweep<double> second =
      run_supervised(std::move(retry), rcfg, scalar_codec());
  EXPECT_EQ(runs.load(), 1);
  EXPECT_TRUE(second.statuses[0].from_checkpoint);
  EXPECT_FALSE(second.statuses[1].from_checkpoint);
  EXPECT_EQ(second.statuses[1].status, RunStatus::kOk);
  EXPECT_TRUE(second.ok());
}

// ---- Status plumbing ---------------------------------------------------

TEST(Supervisor, StatusNamesRoundTrip) {
  for (RunStatus s : {RunStatus::kOk, RunStatus::kError, RunStatus::kTimeout,
                      RunStatus::kInvariantViolation, RunStatus::kSkipped}) {
    EXPECT_EQ(run_status_from_name(run_status_name(s)), s);
  }
}

TEST(Supervisor, ExitCodes) {
  std::vector<PointStatus> all_ok(2);
  all_ok[0].status = all_ok[1].status = RunStatus::kOk;
  EXPECT_EQ(supervised_exit_code(all_ok, false), 0);
  EXPECT_EQ(supervised_exit_code(all_ok, true), 130);
  std::vector<PointStatus> one_bad = all_ok;
  one_bad[1].status = RunStatus::kTimeout;
  EXPECT_EQ(supervised_exit_code(one_bad, false), 3);
}

}  // namespace
}  // namespace proteus
