// Topology graph + multi-bottleneck scenario tests.
//
// Covers the routing core (per-flow demux, multi-hop forwarding, default-
// path fallback), the three registered scenario shapes (parking-lot,
// fan-in, CDN-edge star), the --topology= CLI grammar, and the three
// ACK-path regressions the generalization exposed:
//   1. the compressed-ACK (ackburst) release spacing must honor the
//      configured AckAggregatorConfig::release_spacing, not a hardcoded
//      30 us;
//   2. an enabled AckAggregator must pass ACKs through unspaced outside
//      blocked windows (the old code rate-limited *every* ACK, capping
//      throughput at 1/release_spacing ACKs per second);
//   3. flow ids must come from the single Scenario::allocate_flow_id()
//      source however creation paths are mixed.
// The bit-identity of the dumbbell-on-topology rewrite itself is pinned
// separately in topology_golden_test.cc.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/factory.h"
#include "harness/fault_spec.h"
#include "harness/invariants.h"
#include "harness/parallel_runner.h"
#include "harness/scenario.h"
#include "harness/supervisor.h"
#include "harness/telemetry_export.h"
#include "harness/trace_export.h"
#include "sim/topology.h"

namespace proteus {
namespace {

struct RecordingSink final : PacketSink {
  explicit RecordingSink(Simulator* s) : sim(s) {}
  void on_packet(const Packet& p) override {
    times.push_back(sim->now());
    pkts.push_back(p);
  }
  Simulator* sim;
  std::vector<TimeNs> times;
  std::vector<Packet> pkts;
};

Packet data_packet(FlowId id, uint64_t seq = 0) {
  Packet p;
  p.flow_id = id;
  p.seq = seq;
  p.size_bytes = 1500;
  return p;
}

Packet ack_packet(FlowId id, uint64_t seq = 0) {
  Packet p;
  p.flow_id = id;
  p.seq = seq;
  p.size_bytes = 40;
  p.is_ack = true;
  return p;
}

// ---------------------------------------------------------------------
// Routing core
// ---------------------------------------------------------------------

TEST(TopologyRouting, MultiHopForwardAndReverse) {
  Simulator sim(1);
  Topology topo(&sim);
  LinkConfig lc;
  lc.prop_delay = from_ms(1);
  const auto h0 = topo.add_link(0, 1, lc, 11, "h0");
  const auto h1 = topo.add_link(1, 2, lc, 12, "h1");
  const auto h2 = topo.add_link(2, 3, lc, 13, "h2");
  const auto rev = topo.add_delay_edge(3, 0, from_ms(3), "rev");
  topo.add_path({{h0, h1, h2}, {rev}});

  RecordingSink recv(&sim), acks(&sim);
  topo.attach_flow(7, &recv, &acks);

  topo.forward_ingress(7)->on_packet(data_packet(7));
  sim.run_until(from_ms(100));
  ASSERT_EQ(recv.pkts.size(), 1u);
  EXPECT_EQ(recv.pkts[0].flow_id, 7u);
  for (int i = 0; i < topo.link_count(); ++i) {
    EXPECT_EQ(topo.link(i).stats().offered_packets, 1) << topo.link_name(i);
    EXPECT_EQ(topo.link(i).stats().delivered_packets, 1) << topo.link_name(i);
  }
  // The data packet crossed three hops: arrival is at least 3x (prop +
  // serialization); well past a single hop.
  EXPECT_GT(recv.times[0], from_ms(3));

  const TimeNs t0 = sim.now();
  topo.send_reverse(ack_packet(7));
  sim.run_until(sim.now() + from_ms(100));
  ASSERT_EQ(acks.pkts.size(), 1u);
  EXPECT_TRUE(acks.pkts[0].is_ack);
  // A delay edge is exact: propagation only, no queue.
  EXPECT_EQ(acks.times[0], t0 + from_ms(3));
}

TEST(TopologyRouting, PerFlowPathDemux) {
  Simulator sim(1);
  Topology topo(&sim);
  LinkConfig lc;
  lc.prop_delay = from_ms(1);
  const auto a = topo.add_link(0, 1, lc, 21, "a");
  const auto b = topo.add_link(0, 1, lc, 22, "b");
  const auto ra = topo.add_delay_edge(1, 0, from_ms(1), "ra");
  const auto rb = topo.add_delay_edge(1, 0, from_ms(1), "rb");
  topo.add_path({{a}, {ra}});
  topo.add_path({{b}, {rb}});

  RecordingSink recv1(&sim), acks1(&sim), recv2(&sim), acks2(&sim);
  // Flow 2's path is set before attach; attach must preserve it.
  topo.set_flow_path(2, 1);
  topo.attach_flow(1, &recv1, &acks1);
  topo.attach_flow(2, &recv2, &acks2);

  topo.forward_ingress(1)->on_packet(data_packet(1));
  topo.forward_ingress(2)->on_packet(data_packet(2));
  sim.run_until(from_ms(100));

  ASSERT_EQ(recv1.pkts.size(), 1u);
  ASSERT_EQ(recv2.pkts.size(), 1u);
  EXPECT_EQ(recv1.pkts[0].flow_id, 1u);
  EXPECT_EQ(recv2.pkts[0].flow_id, 2u);
  // Each flow's packet took its own link.
  EXPECT_EQ(topo.link(0).stats().offered_packets, 1);
  EXPECT_EQ(topo.link(1).stats().offered_packets, 1);
}

TEST(TopologyRouting, DetachedFlowFallsBackToDefaultPathAndDropsAtEgress) {
  Simulator sim(1);
  Topology topo(&sim);
  LinkConfig lc;
  const auto fwd = topo.add_link(0, 1, lc, 31);
  const auto rev = topo.add_delay_edge(1, 0, from_ms(5));
  topo.add_path({{fwd}, {rev}});

  RecordingSink recv(&sim), acks(&sim);
  topo.attach_flow(1, &recv, &acks);
  // An ACK already in flight when its flow detaches must still consume
  // its reverse-path event (the RNG/event-count contract send_reverse
  // documents) and then be dropped silently at egress.
  topo.send_reverse(ack_packet(1));
  topo.detach_flow(1);
  const uint64_t before = sim.events_processed();
  sim.run_until(from_ms(100));
  EXPECT_TRUE(acks.pkts.empty());
  EXPECT_GT(sim.events_processed(), before);
  // A never-attached flow routes via path 0 too.
  EXPECT_NE(topo.forward_ingress(99), nullptr);
  topo.forward_ingress(99)->on_packet(data_packet(99));
  sim.run_until(sim.now() + from_ms(100));
  EXPECT_EQ(topo.link(0).stats().offered_packets, 1);
  EXPECT_TRUE(recv.pkts.empty());
}

// ---------------------------------------------------------------------
// Satellite regressions
// ---------------------------------------------------------------------

// Regression (ackburst spacing): the compressed-ACK release used to be
// hardcoded at 30 us regardless of AckAggregatorConfig::release_spacing.
// ACKs held by a burst window must flush at the *configured* spacing.
TEST(AckPathRegression, BurstReleaseHonorsConfiguredSpacing) {
  Simulator sim(1);
  Topology topo(&sim);
  const auto fwd = topo.add_link(0, 1, LinkConfig{}, 41);
  const auto rev = topo.add_delay_edge(1, 0, from_ms(1), "rev");
  topo.add_path({{fwd}, {rev}});

  FaultSpec burst;
  burst.type = FaultType::kAckBurst;
  burst.start = from_ms(10);
  burst.duration = from_ms(20);  // window [10, 30) ms
  FaultTimeline* tl = topo.add_fault_timeline({burst}, 99);
  topo.set_ack_faults(rev, tl);
  const TimeNs spacing = from_us(250);
  topo.set_burst_release_spacing(rev, spacing);

  RecordingSink recv(&sim), acks(&sim);
  topo.attach_flow(1, &recv, &acks);
  for (int i = 0; i < 4; ++i) {
    // Arrive at the delay-edge egress at 13..16 ms, inside the window.
    sim.schedule_at(from_ms(12 + i), [&topo, i] {
      topo.send_reverse(ack_packet(1, static_cast<uint64_t>(i)));
    });
  }
  sim.run_until(from_ms(100));
  ASSERT_EQ(acks.times.size(), 4u);
  EXPECT_EQ(acks.times[0], from_ms(30));  // released at window end
  for (size_t i = 1; i < acks.times.size(); ++i) {
    EXPECT_EQ(acks.times[i] - acks.times[i - 1], spacing) << i;
    EXPECT_EQ(acks.pkts[i].seq, i);  // FIFO preserved through the flush
  }
}

// Same regression at the Dumbbell level: the config knob must reach the
// reverse delay edge (the old code passed a literal from_us(30)).
TEST(AckPathRegression, DumbbellBurstSpacingComesFromConfig) {
  Simulator sim(1);
  DumbbellConfig dc;
  dc.ack_aggregation.release_spacing = from_us(400);
  FaultSpec burst;
  burst.type = FaultType::kAckBurst;
  burst.start = from_ms(10);
  burst.duration = from_ms(20);
  dc.faults = {burst};
  Dumbbell net(&sim, dc);

  RecordingSink recv(&sim), acks(&sim);
  net.attach_flow(1, &recv, &acks);
  for (int i = 0; i < 3; ++i) {
    // reverse_delay is 15 ms: arrivals at 25..27 ms, inside the window.
    sim.schedule_at(from_ms(10 + i), [&net, i] {
      net.send_reverse(ack_packet(1, static_cast<uint64_t>(i)));
    });
  }
  sim.run_until(from_ms(100));
  ASSERT_EQ(acks.times.size(), 3u);
  EXPECT_EQ(acks.times[0], from_ms(30));
  EXPECT_EQ(acks.times[1] - acks.times[0], from_us(400));
  EXPECT_EQ(acks.times[2] - acks.times[1], from_us(400));
}

// Regression (aggregator pass-through): with aggregation enabled, ACKs
// arriving outside any blocked window must NOT be spaced. The old code
// put every ACK on the release clock, silently capping every wifi run at
// 1/release_spacing ACKs per second.
TEST(AckPathRegression, AggregatorPassesUnblockedAcksAtFullRate) {
  Simulator sim(1);
  AckAggregatorConfig cfg;
  cfg.enabled = true;
  // First block lands ~1000 s out: the whole test runs block-free.
  cfg.mean_block_interval = from_sec(1000);
  cfg.release_spacing = from_us(30);
  AckAggregator agg(&sim, cfg, /*seed=*/3);

  RecordingSink sink(&sim);
  std::vector<TimeNs> sent;
  // A high-rate ACK train: 200 ACKs spaced 2 us apart — 15x faster than
  // release_spacing admits. All must pass through at their own times.
  for (int i = 0; i < 200; ++i) {
    const TimeNs t = from_ms(1) + i * from_us(2);
    sent.push_back(t);
    sim.schedule_at(t, [&agg, &sink, i] {
      agg.deliver(ack_packet(1, static_cast<uint64_t>(i)), &sink);
    });
  }
  sim.run_until(from_sec(1));
  ASSERT_EQ(sink.times.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(sink.times[i], sent[i]) << i;
  }
}

// The flip side: ACKs caught inside a blocked window are held and then
// flushed spaced by exactly release_spacing.
TEST(AckPathRegression, AggregatorSpacesHeldAcksOnRelease) {
  Simulator sim(1);
  AckAggregatorConfig cfg;
  cfg.enabled = true;
  // A block starts within a few ms and holds for ~10 s: every ACK below
  // is delivered mid-block.
  cfg.mean_block_interval = from_ms(1);
  cfg.mean_block_duration = from_sec(10);
  cfg.release_spacing = from_us(30);
  AckAggregator agg(&sim, cfg, /*seed=*/5);

  RecordingSink sink(&sim);
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(from_ms(20) + i * from_us(10), [&agg, &sink, i] {
      agg.deliver(ack_packet(1, static_cast<uint64_t>(i)), &sink);
    });
  }
  sim.run_until(from_sec(60));
  ASSERT_EQ(sink.times.size(), 5u);
  EXPECT_GT(sink.times[0], from_ms(20));  // held past delivery
  for (size_t i = 1; i < sink.times.size(); ++i) {
    EXPECT_EQ(sink.times[i] - sink.times[i - 1], cfg.release_spacing) << i;
  }
}

// Regression (flow-id desync): every creation path draws from the single
// allocate_flow_id() source, so mixing them can never desynchronize ids
// from flow_seed(id) derivations.
TEST(FlowIdAllocator, SingleSourceSurvivesMixedCreationPaths) {
  ScenarioConfig cfg;
  Scenario sc(cfg);
  EXPECT_EQ(sc.allocate_flow_id(), 1u);  // ids start at 1
  Flow& a = sc.add_flow("cubic", 0);
  EXPECT_EQ(a.config().id, 2u);
  EXPECT_EQ(sc.allocate_flow_id(), 3u);
  Flow& b = sc.add_flow_with_cc(make_protocol("cubic", sc.flow_seed(4)), 0);
  EXPECT_EQ(b.config().id, 4u);
  Flow& c = sc.add_flow("bbr", from_sec(1));
  EXPECT_EQ(c.config().id, 5u);
  // No duplicates across the mix.
  EXPECT_NE(a.config().id, b.config().id);
  EXPECT_NE(b.config().id, c.config().id);
}

// ---------------------------------------------------------------------
// Scenario shapes
// ---------------------------------------------------------------------

TEST(ScenarioShapes, ParkingLotBuildsChainAndCrossPaths) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kParkingLot;
  cfg.topology.arms = 4;
  Scenario sc(cfg);
  const Topology& topo = sc.topology();
  EXPECT_EQ(topo.link_count(), 4);  // >= 3 bottlenecks in a row
  EXPECT_EQ(topo.path_count(), 5);  // long path + one crossing per hop
  EXPECT_EQ(topo.link_name(0), "hop0");
  EXPECT_EQ(topo.link_name(3), "hop3");
  EXPECT_EQ(topo.path(0).forward.size(), 4u);  // end-to-end
  EXPECT_EQ(topo.path(1).forward.size(), 1u);  // crosses one hop

  sc.add_flow("cubic", 0);  // flow 1 -> path 0 (long)
  for (int i = 0; i < 4; ++i) sc.add_flow("cubic", from_ms(100 * i));
  sc.run_until(from_sec(4));
  EXPECT_TRUE(check_invariants(sc).violations.empty())
      << check_invariants(sc).to_string();
  for (int i = 0; i < topo.link_count(); ++i) {
    // Long + crossing traffic loads every hop.
    EXPECT_GT(topo.link(i).stats().delivered_bytes, 0) << topo.link_name(i);
  }
  // The long flow made it through the whole chain.
  EXPECT_GT(sc.flows()[0]->receiver().bytes_received(), 0u);
}

TEST(ScenarioShapes, FanInSharesOneCore) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kFanIn;
  cfg.topology.arms = 3;
  Scenario sc(cfg);
  const Topology& topo = sc.topology();
  EXPECT_EQ(topo.link_count(), 4);  // core + 3 access links
  EXPECT_EQ(topo.path_count(), 3);
  EXPECT_EQ(topo.link_name(0), "core");
  EXPECT_EQ(topo.link_name(1), "edge0");

  for (int i = 0; i < 3; ++i) sc.add_flow("cubic", 0);
  sc.run_until(from_sec(4));
  EXPECT_TRUE(check_invariants(sc).violations.empty())
      << check_invariants(sc).to_string();
  // Everything the access links delivered converged on the core (modulo
  // the handful still in propagation flight at the cutoff).
  int64_t edges_delivered = 0;
  for (int i = 1; i < topo.link_count(); ++i) {
    EXPECT_GT(topo.link(i).stats().delivered_packets, 0) << topo.link_name(i);
    edges_delivered += topo.link(i).stats().delivered_packets;
  }
  EXPECT_LE(topo.link(0).stats().offered_packets, edges_delivered);
  EXPECT_GE(topo.link(0).stats().offered_packets, edges_delivered * 99 / 100);
}

TEST(ScenarioShapes, StarLeavesSpanHeterogeneousRtts) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kStar;
  cfg.topology.arms = 3;
  cfg.topology.rtt_spread = 1.0;  // leaf RTTs span [base, 2x base]
  Scenario sc(cfg);
  EXPECT_EQ(sc.topology().link_count(), 4);  // core + 3 leaves
  EXPECT_EQ(sc.topology().path_count(), 3);

  // Leaf one-way delays scale by 1 + spread * i / (arms-1): 7.5, 11.25,
  // and 15 ms here.
  const Topology& topo = sc.topology();
  EXPECT_EQ(topo.link(1).config().prop_delay, from_ms(7.5));
  EXPECT_EQ(topo.link(2).config().prop_delay, from_ms(11.25));
  EXPECT_EQ(topo.link(3).config().prop_delay, from_ms(15.0));

  Flow& near = sc.add_flow("cubic", 0);  // path 0: nearest leaf
  sc.add_flow("cubic", 0);               // path 1
  Flow& far = sc.add_flow("cubic", 0);   // path 2: farthest leaf
  sc.run_until(from_sec(5));
  EXPECT_TRUE(check_invariants(sc).violations.empty())
      << check_invariants(sc).to_string();
  // Self-induced queueing swamps the percentiles, so compare the floor:
  // the minimum RTT is the base path delay (seen in slow start before the
  // queues build), and the far leaf's is ~22 ms longer than the near
  // leaf's.
  EXPECT_GT(far.rtt_samples().percentile(0),
            near.rtt_samples().percentile(0) + cfg.rtt_ms / 2.0);
  EXPECT_GE(near.rtt_samples().percentile(0), cfg.rtt_ms);
}

// ---------------------------------------------------------------------
// --topology= grammar
// ---------------------------------------------------------------------

TEST(TopologyFlag, ParsesKindsAndOptions) {
  TopologyParams tp;
  std::string err;
  EXPECT_TRUE(parse_topology_flag("--topology=parkinglot:arms=5", tp, err));
  EXPECT_EQ(tp.kind, TopologyKind::kParkingLot);
  EXPECT_EQ(tp.arms, 5);
  EXPECT_TRUE(parse_topology_flag(
      "--topology=star:arms=4:edge-bw=200:spread=2.5", tp, err));
  EXPECT_EQ(tp.kind, TopologyKind::kStar);
  EXPECT_EQ(tp.arms, 4);
  EXPECT_DOUBLE_EQ(tp.edge_bandwidth_mbps, 200.0);
  EXPECT_DOUBLE_EQ(tp.rtt_spread, 2.5);
  EXPECT_TRUE(parse_topology_flag("--topology=dumbbell", tp, err));
  EXPECT_EQ(tp.kind, TopologyKind::kDumbbell);

  // Malformed: recognized flag family, error set.
  EXPECT_FALSE(parse_topology_flag("--topology=ring", tp, err));
  EXPECT_FALSE(err.empty());
  err.clear();
  EXPECT_FALSE(parse_topology_flag("--topology=fanin:arms=1", tp, err));
  EXPECT_FALSE(err.empty());
  err.clear();
  // Not this flag family at all: false with error empty.
  EXPECT_FALSE(parse_topology_flag("--faults=blackout@1:1", tp, err));
  EXPECT_TRUE(err.empty());
}

TEST(TopologyFlag, ReachesScenarioConfigThroughParseCli) {
  const CliParseResult r = parse_cli(
      {"--topology=fanin:arms=6", "--bw=20", "--flows=cubic,cubic"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.scenario.topology.kind, TopologyKind::kFanIn);
  EXPECT_EQ(r.options.scenario.topology.arms, 6);

  const CliParseResult bad = parse_cli({"--topology=parkinglot:arms=0"});
  EXPECT_FALSE(bad.ok);
}

// ---------------------------------------------------------------------
// Parking-lot determinism under faults + telemetry, serial and parallel
// ---------------------------------------------------------------------

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A parking-lot run with >= 3 bottlenecks, a fault schedule spanning
// forward and reverse hooks, and per-MI telemetry on the long flow.
// Returns a digest of every artifact: per-hop counters, event count, and
// the CSV/JSONL bytes.
std::string parkinglot_digest(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/topo_pl_" + tag;
  TelemetryConfig tcfg;
  tcfg.dir = dir;
  tcfg.every = 1;
  RunContext ctx(/*attempt=*/0, /*wall_timeout_sec=*/0,
                 /*sim_timeout_sec=*/0, /*trace_capacity=*/64);
  ctx.set_telemetry(&tcfg, "pl");

  ScenarioConfig cfg;
  cfg.seed = 1234;
  cfg.topology.kind = TopologyKind::kParkingLot;
  cfg.topology.arms = 3;
  const FaultParseResult faults = parse_faults(
      "blackout@2:1,reorder@3:p=0.1:delta=10ms:1,ackloss@4:p=0.2:1,"
      "ackburst@5:100ms");
  EXPECT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  Scenario sc(cfg);
  Flow& lead = sc.add_flow("proteus-s", 0);
  std::vector<const Flow*> flows = {&lead};
  for (int i = 0; i < 3; ++i) {
    flows.push_back(&sc.add_flow("cubic", from_ms(500 * (i + 1))));
  }
  {
    FlowTelemetrySession session(&ctx, lead, "lead");
    sc.run_until(from_sec(8));
  }

  const std::string base = dir + "/out";
  EXPECT_TRUE(write_throughput_csv(base + ".csv", flows, from_sec(8)));
  EXPECT_TRUE(
      write_link_stats_csv(base + "_links.csv", sc.topology().link_stats()));

  std::ostringstream os;
  os << "parkinglot";
  for (int i = 0; i < sc.topology().link_count(); ++i) {
    const LinkStats& st = sc.topology().link(i).stats();
    os << ' ' << st.offered_packets << ' ' << st.delivered_packets << ' '
       << st.tail_drops << ' ' << st.blackout_drops << ' ' << st.reordered
       << ' ' << st.ack_drops;
  }
  os << ' ' << sc.sim().events_processed();
  os << ' ' << std::hex << fnv1a(slurp(base + ".csv")) << ' '
     << fnv1a(slurp(base + "_links.csv")) << ' '
     << fnv1a(slurp(dir + "/pl-lead.jsonl"));
  return os.str();
}

TEST(ParkingLotDeterminism, SerialAndParallelRunsAreByteIdentical) {
  const std::string serial = parkinglot_digest("serial");
  // The schedule actually exercised the faults and the telemetry export.
  EXPECT_NE(serial.find("parkinglot"), std::string::npos);
  EXPECT_EQ(serial, parkinglot_digest("serial2"));

  std::vector<std::function<std::string()>> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([i] { return parkinglot_digest("par" + std::to_string(i)); });
  }
  const std::vector<std::string> parallel = run_parallel(std::move(tasks), 4);
  for (const std::string& d : parallel) {
    EXPECT_EQ(serial, d);
  }
}

// The fault counters themselves must land: a parking-lot run under this
// schedule sees blackout drops on the primary hop and ACK drops mirrored
// into its stats row (the per-hop CSV carries them).
TEST(ParkingLotDeterminism, FaultCountersLandOnPrimaryHop) {
  ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.topology.kind = TopologyKind::kParkingLot;
  cfg.topology.arms = 3;
  const FaultParseResult faults =
      parse_faults("blackout@1:1,ackloss@3:p=0.3:2");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  Scenario sc(cfg);
  sc.add_flow("cubic", 0);
  for (int i = 0; i < 3; ++i) sc.add_flow("cubic", 0);
  sc.run_until(from_sec(6));
  const LinkStats& primary = sc.bottleneck().stats();
  EXPECT_GT(primary.blackout_drops, 0);
  EXPECT_GT(primary.ack_drops, 0);
  // Non-primary hops carry no forward fault hooks.
  EXPECT_EQ(sc.topology().link(1).stats().blackout_drops, 0);
}

TEST(ParkingLotDeterminism, TargetedFaultsLandOnTheirHop) {
  // `link1:` routes the blackout to the second bottleneck hop; the
  // primary hop and the other hops stay clean.
  ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.topology.kind = TopologyKind::kParkingLot;
  cfg.topology.arms = 3;
  const FaultParseResult faults = parse_faults("link1:blackout@1:1");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  Scenario sc(cfg);
  sc.add_flow("cubic", 0);
  for (int i = 0; i < 3; ++i) sc.add_flow("cubic", 0);
  sc.run_until(from_sec(6));
  EXPECT_GT(sc.topology().link(1).stats().blackout_drops, 0);
  EXPECT_EQ(sc.bottleneck().stats().blackout_drops, 0);
  EXPECT_EQ(sc.topology().link(2).stats().blackout_drops, 0);
}

TEST(ParkingLotDeterminism, MixedTargetsSplitAcrossHops) {
  ScenarioConfig cfg;
  cfg.seed = 77;
  cfg.topology.kind = TopologyKind::kParkingLot;
  cfg.topology.arms = 3;
  const FaultParseResult faults =
      parse_faults("blackout@1:1,link2:blackout@3:1");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  Scenario sc(cfg);
  sc.add_flow("cubic", 0);
  for (int i = 0; i < 3; ++i) sc.add_flow("cubic", 0);
  sc.run_until(from_sec(6));
  // The untargeted event keeps applying to the primary hop.
  EXPECT_GT(sc.bottleneck().stats().blackout_drops, 0);
  EXPECT_GT(sc.topology().link(2).stats().blackout_drops, 0);
  EXPECT_EQ(sc.topology().link(1).stats().blackout_drops, 0);
}

TEST(TopologyFaults, OutOfRangeTargetIsRejected) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kParkingLot;
  cfg.topology.arms = 3;  // 3 bottleneck hops: links 0..2
  const FaultParseResult faults = parse_faults("link5:blackout@1:1");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  EXPECT_THROW(Scenario sc(cfg), std::runtime_error);
}

TEST(TopologyFaults, DumbbellRejectsNonZeroTargets) {
  ScenarioConfig cfg;  // default dumbbell: link 0 is the only target
  const FaultParseResult faults = parse_faults("link1:blackout@1:1");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  EXPECT_THROW(Scenario sc(cfg), std::runtime_error);
}

}  // namespace
}  // namespace proteus
