// Steady-state allocation test for the churn path: after the per-class
// flow arenas warm up, one simulated second of capped CDN churn must
// perform ZERO heap allocations.
//
// This extends sim_alloc_test's engine-level guarantee to the full
// arrival/teardown cycle: pooled flows are retired and re-armed in
// place (Flow::recycle), completion callbacks fit std::function's small
// buffer, slot tables and id pools ratchet to a high-water capacity,
// and receiver metering is off for churn flows. The mix is web+video
// only (cubic+bbr): PCC's monitor-interval bookkeeping allocates per MI
// by design, so proteus flows are excluded from the zero-alloc claim.
//
// The counting operator new/delete replacements are defined in this
// translation unit only (each test file is its own binary, so they
// cannot collide with sim_alloc_test's). Under sanitizers the
// interceptors own malloc, so the test skips itself there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "harness/churn.h"
#include "harness/scenario.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PROTEUS_ALLOC_COUNTING_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PROTEUS_ALLOC_COUNTING_DISABLED 1
#endif
#endif

#ifndef PROTEUS_ALLOC_COUNTING_DISABLED

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(a),
                                   (n + static_cast<std::size_t>(a) - 1) /
                                       static_cast<std::size_t>(a) *
                                       static_cast<std::size_t>(a))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // !PROTEUS_ALLOC_COUNTING_DISABLED

namespace proteus {
namespace {

TEST(ChurnSteadyStateAllocation, OneSimulatedSecondAllocatesNothing) {
#ifdef PROTEUS_ALLOC_COUNTING_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  for (EventEngine engine :
       {EventEngine::kTimerWheel, EventEngine::kBinaryHeap}) {
    ScenarioConfig cfg;
    cfg.topology.kind = TopologyKind::kCdnEdge;
    cfg.topology.arms = 3;
    cfg.seed = 11;
    cfg.engine = engine;
    cfg.planned_flows = 300;
    Scenario sc(cfg);
    ChurnConfig ch;
    ch.arrivals_per_sec = 400;
    ch.mean_size_kb = 48;
    ch.max_concurrent = 150;
    // Pre-size the in-flight slot ring and BBR snapshot ring past any
    // window the run can open. The hint is storage-only (capacity never
    // affects timing — the golden digest tests prove it), and without it
    // the zero-alloc claim would depend on every pooled flow object
    // having already served a worst-case window: heavy-tailed sizes keep
    // finding new per-object high-waters for tens of simulated seconds.
    ch.window_slots = 1024;
    // Fill the per-class arenas to the per-arm cap up front: a pool
    // miss constructs a flow mid-run (a dozen allocations) whenever a
    // class's live count reaches a new high-water, and with heavy-tailed
    // sizes that tail persists for tens of simulated seconds.
    ch.prewarm_per_class = 50;
    ch.mix_web = 0.6;
    ch.mix_video = 0.4;
    ch.mix_bulk = 0.0;
    ch.mix_scavenger = 0.0;
    ChurnDriver churn(sc, ch);

    // Warm-up: class pools fill with retired flows, slot/ctx tables and
    // id pools reach their high-water sizes, link rings and CC state
    // rings ratchet.
    sc.run_until(from_sec(5));
    const ChurnStats warm = churn.stats();

    const std::uint64_t before =
        g_alloc_calls.load(std::memory_order_relaxed);
    sc.run_until(from_sec(6));
    const std::uint64_t during =
        g_alloc_calls.load(std::memory_order_relaxed) - before;
    const ChurnStats after = churn.stats();

    // Sanity: the measured second did real churn work, and every
    // admitted arrival was served from the arena (no fresh Flow
    // construction — the complement of the zero-alloc claim).
    const int64_t spawned = after.spawned - warm.spawned;
    const int64_t recycled = after.recycled - warm.recycled;
    EXPECT_GT(spawned, 10);
    EXPECT_GT(after.completed - warm.completed, 10);
    EXPECT_EQ(spawned, recycled);
    EXPECT_EQ(during, 0u)
        << (engine == EventEngine::kTimerWheel ? "wheel" : "heap")
        << " engine allocated during steady-state churn";
  }
#endif
}

// The counting hook itself must observe allocations, or the zero above
// would be vacuous.
TEST(ChurnSteadyStateAllocation, CountingHookObservesAllocations) {
#ifdef PROTEUS_ALLOC_COUNTING_DISABLED
  GTEST_SKIP() << "allocation counting disabled under sanitizers";
#else
  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  auto* p = new std::vector<int>(1024);
  const std::uint64_t after = g_alloc_calls.load(std::memory_order_relaxed);
  delete p;
  EXPECT_GE(after - before, 2u);
#endif
}

}  // namespace
}  // namespace proteus
