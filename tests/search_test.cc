// Tests for the adversarial scenario search (src/search/): genome CLI
// round trips, objective scoring helpers, constraint-respecting
// mutation, driver determinism across --jobs, and corpus persistence +
// replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "harness/fault_spec.h"
#include "search/corpus.h"

namespace proteus {
namespace {

std::string tmp_dir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

ScenarioGenome rich_genome() {
  ScenarioGenome g;
  g.bandwidth_mbps = 72.5;
  g.rtt_ms = 18.26059794628789;  // exercises shortest-double formatting
  g.buffer_bytes = 125'000;
  g.random_loss = 0.0125;
  g.topology.kind = TopologyKind::kParkingLot;
  g.topology.arms = 3;
  g.duration_sec = 9.0;
  g.warmup_sec = 2.5;
  g.seed = 4242;
  g.flows = {{"proteus-s", 0.0}, {"cubic", 1.5}, {"bbr", 3.0}};
  const FaultParseResult f = parse_faults(
      "blackout@2:1,link1:capacity@3500ms:x=0.25:2,link2:ackloss@5:p=0.3:1");
  EXPECT_TRUE(f.ok) << f.error;
  g.faults = f.faults;
  return g;
}

// ---- Genome serialization ----------------------------------------------

TEST(Genome, CliRoundTripIsExactAndByteStable) {
  const ScenarioGenome g = rich_genome();
  const std::vector<std::string> args = genome_to_args(g);
  const CliParseResult parsed = parse_cli(args);
  ASSERT_TRUE(parsed.ok) << parsed.error << " [" << genome_cli_line(g) << "]";

  const ScenarioGenome back = genome_from_options(parsed.options);
  EXPECT_EQ(back.bandwidth_mbps, g.bandwidth_mbps);
  EXPECT_EQ(back.rtt_ms, g.rtt_ms);
  EXPECT_EQ(back.buffer_bytes, g.buffer_bytes);
  EXPECT_EQ(back.random_loss, g.random_loss);
  EXPECT_EQ(back.topology.kind, g.topology.kind);
  EXPECT_EQ(back.topology.arms, g.topology.arms);
  EXPECT_EQ(back.duration_sec, g.duration_sec);
  EXPECT_EQ(back.warmup_sec, g.warmup_sec);
  EXPECT_EQ(back.seed, g.seed);
  ASSERT_EQ(back.flows.size(), g.flows.size());
  for (size_t i = 0; i < g.flows.size(); ++i) {
    EXPECT_EQ(back.flows[i].protocol, g.flows[i].protocol);
    EXPECT_EQ(back.flows[i].start_sec, g.flows[i].start_sec);
  }
  ASSERT_EQ(back.faults.size(), g.faults.size());
  for (size_t i = 0; i < g.faults.size(); ++i) {
    EXPECT_EQ(back.faults[i].type, g.faults[i].type);
    EXPECT_EQ(back.faults[i].start, g.faults[i].start);
    EXPECT_EQ(back.faults[i].duration, g.faults[i].duration);
    EXPECT_EQ(back.faults[i].value, g.faults[i].value);
    EXPECT_EQ(back.faults[i].delay, g.faults[i].delay);
    EXPECT_EQ(back.faults[i].link, g.faults[i].link);
  }
  // Byte stability: serialize -> parse -> serialize is a fixed point.
  EXPECT_EQ(genome_cli_line(back), genome_cli_line(g));
}

TEST(Genome, DefaultGenomeEmitsMinimalDumbbellLine) {
  ScenarioGenome g;
  g.flows = {{"cubic", 0.0}};
  const std::string line = genome_cli_line(g);
  EXPECT_EQ(line.find("--topology"), std::string::npos);
  EXPECT_EQ(line.find("--faults"), std::string::npos);
  EXPECT_EQ(line.find("--loss"), std::string::npos);
  const CliParseResult parsed = parse_cli(genome_to_args(g));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(genome_cli_line(genome_from_options(parsed.options)), line);
}

TEST(Genome, LinkCountMatchesTopologyShape) {
  ScenarioGenome g;
  EXPECT_EQ(genome_link_count(g), 1);  // dumbbell
  g.topology.kind = TopologyKind::kParkingLot;
  g.topology.arms = 4;
  EXPECT_EQ(genome_link_count(g), 4);
  g.topology.kind = TopologyKind::kFanIn;
  EXPECT_EQ(genome_link_count(g), 5);
  g.topology.kind = TopologyKind::kStar;
  EXPECT_EQ(genome_link_count(g), 5);
}

// ---- available_fraction ------------------------------------------------

TEST(Objective, AvailableFractionHandlesBlackoutsAndCapacity) {
  EXPECT_EQ(available_fraction({}, 0, from_sec(0), from_sec(10)), 1.0);

  // Blackout covering half the window.
  FaultSpec blackout{FaultType::kBlackout, from_sec(2), from_sec(5)};
  EXPECT_DOUBLE_EQ(
      available_fraction({blackout}, 0, from_sec(0), from_sec(10)), 0.5);

  // Capacity x=0.5 over half the window: 0.5*0.5 + 0.5*1 = 0.75.
  FaultSpec cap{FaultType::kCapacity, from_sec(0), from_sec(5), 0.5};
  EXPECT_DOUBLE_EQ(available_fraction({cap}, 0, from_sec(0), from_sec(10)),
                   0.75);

  // Blackout wins inside an overlapping capacity window.
  EXPECT_DOUBLE_EQ(
      available_fraction({blackout, cap}, 0, from_sec(0), from_sec(10)),
      0.4);  // [0,2) at 0.5, [2,7) blacked out, [7,10) at 1.0
}

TEST(Objective, AvailableFractionFiltersByTargetLink) {
  FaultSpec other{FaultType::kBlackout, from_sec(0), from_sec(10)};
  other.link = 2;
  EXPECT_EQ(available_fraction({other}, 0, from_sec(0), from_sec(10)), 1.0);
  EXPECT_EQ(available_fraction({other}, 2, from_sec(0), from_sec(10)), 0.0);
}

TEST(Objective, PermanentBlackoutClipsToWindow) {
  FaultSpec permanent{FaultType::kBlackout, from_sec(5), 0};  // until end
  EXPECT_DOUBLE_EQ(
      available_fraction({permanent}, 0, from_sec(0), from_sec(10)), 0.5);
}

// ---- Objectives --------------------------------------------------------

TEST(Objective, FactoryKnowsEveryRegisteredName) {
  for (const std::string& name : objective_names()) {
    const auto obj = make_objective(name);
    EXPECT_EQ(obj->name().rfind(name, 0), 0u) << name;
    EXPECT_FALSE(obj->baseline().flows.empty()) << name;
  }
  EXPECT_THROW(make_objective("nope"), std::invalid_argument);
  EXPECT_THROW(make_objective("planted:xyz"), std::invalid_argument);
}

TEST(Objective, PlantedIsAnalyticAndKeyed) {
  const auto a = make_objective("planted:7");
  const auto b = make_objective("planted:8");
  EXPECT_FALSE(a->needs_run());
  ScenarioGenome g = a->baseline();
  // Different keys plant the bug in different places.
  EXPECT_NE(a->score(g, EvalSummary{}), b->score(g, EvalSummary{}));
  // Deterministic per key.
  EXPECT_EQ(a->score(g, EvalSummary{}),
            make_objective("planted:7")->score(g, EvalSummary{}));
}

TEST(Objective, RecoveryScoresNeverRecoveredByTimeLeftAfterBlackout) {
  const auto obj = make_objective("recovery");
  ScenarioGenome g = obj->baseline();
  g.duration_sec = 12.0;
  ASSERT_FALSE(g.faults.empty());

  EvalSummary s;
  FlowOutcome primary;
  primary.recovery_sec = 3.5;
  s.flows.push_back(primary);
  EXPECT_DOUBLE_EQ(obj->score(g, s), 3.5);

  // Never recovered: blackout ends at 7s, run ends at 12s -> 5.
  s.flows[0].recovery_sec = -1.0;
  EXPECT_DOUBLE_EQ(obj->score(g, s), 5.0);
}

// ---- Mutation ----------------------------------------------------------

TEST(Mutate, MutantsStayInsideConstraintsAndGrammar) {
  const auto obj = make_objective("recovery");
  const GenomeConstraints c = obj->constraints();
  ScenarioGenome parent = obj->baseline();
  parent.duration_sec = 8.0;
  parent.warmup_sec = 2.0;
  parent = repair_genome(std::move(parent), c);

  Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    const ScenarioGenome m = mutate_genome(parent, c, rng);

    // Protected flows untouched; counts bounded.
    ASSERT_GE(static_cast<int>(m.flows.size()), c.protected_flows);
    ASSERT_LE(static_cast<int>(m.flows.size()), c.max_flows);
    for (int p = 0; p < c.protected_flows; ++p) {
      EXPECT_EQ(m.flows[p].protocol, parent.flows[p].protocol);
      EXPECT_EQ(m.flows[p].start_sec, parent.flows[p].start_sec);
    }
    ASSERT_LE(static_cast<int>(m.faults.size()), c.max_faults);

    // Topology within the allowed set.
    EXPECT_NE(std::find(c.allowed_kinds.begin(), c.allowed_kinds.end(),
                        m.topology.kind),
              c.allowed_kinds.end());

    // require_blackout: at least one finite blackout survives.
    bool has_blackout = false;
    for (const FaultSpec& f : m.faults) {
      EXPECT_GE(f.link, 0);
      EXPECT_LT(f.link, genome_link_count(m));
      EXPECT_GE(f.start, 0);
      EXPECT_LT(f.start, from_sec(m.duration_sec));
      if (f.type == FaultType::kBlackout && f.duration > 0) {
        has_blackout = true;
      }
    }
    EXPECT_TRUE(has_blackout) << genome_cli_line(m);

    // Every mutant serializes to a parseable CLI line that round-trips.
    const CliParseResult parsed = parse_cli(genome_to_args(m));
    ASSERT_TRUE(parsed.ok) << parsed.error << " [" << genome_cli_line(m)
                           << "]";
    EXPECT_EQ(genome_cli_line(genome_from_options(parsed.options)),
              genome_cli_line(m));
    parent = m;  // walk the space, not just the baseline's neighborhood
  }
}

TEST(Mutate, MutationIsAPureFunctionOfTheRngSeed) {
  const auto obj = make_objective("scavenger-utility");
  const GenomeConstraints c = obj->constraints();
  const ScenarioGenome parent = repair_genome(obj->baseline(), c);
  Rng a(77), b(77), d(78);
  const ScenarioGenome ma = mutate_genome(parent, c, a);
  const ScenarioGenome mb = mutate_genome(parent, c, b);
  EXPECT_EQ(genome_cli_line(ma), genome_cli_line(mb));
  // (A different seed usually differs; not asserted — ops can no-op.)
  (void)d;
}

// ---- Search driver -----------------------------------------------------

SearchConfig small_sim_config(int jobs) {
  SearchConfig cfg;
  cfg.objective = "scavenger-utility";
  cfg.budget = 12;
  cfg.mu = 3;
  cfg.lambda = 5;
  cfg.seed = 9;
  cfg.jobs = jobs;
  cfg.duration_sec = 2.0;
  cfg.warmup_sec = 0.5;
  return cfg;
}

TEST(Search, SimBackedSearchIsBitIdenticalAcrossJobs) {
  const SearchResult r1 = run_search(small_sim_config(1), nullptr);
  const SearchResult r4 = run_search(small_sim_config(4), nullptr);

  EXPECT_EQ(r1.evaluations, r4.evaluations);
  EXPECT_EQ(r1.generations, r4.generations);
  EXPECT_EQ(r1.baseline_score, r4.baseline_score);
  ASSERT_EQ(r1.trajectory.size(), r4.trajectory.size());
  for (size_t i = 0; i < r1.trajectory.size(); ++i) {
    EXPECT_EQ(r1.trajectory[i], r4.trajectory[i]) << "generation " << i;
  }
  ASSERT_EQ(r1.top.size(), r4.top.size());
  for (size_t i = 0; i < r1.top.size(); ++i) {
    EXPECT_EQ(r1.top[i].score, r4.top[i].score);
    EXPECT_EQ(r1.top[i].cli, r4.top[i].cli);
    EXPECT_EQ(r1.top[i].status, r4.top[i].status);
  }
}

TEST(Search, PlantedObjectiveSearchBeatsItsBaseline) {
  SearchConfig cfg;
  cfg.objective = "planted:7";
  cfg.budget = 48;
  cfg.seed = 3;
  cfg.jobs = 2;
  const SearchResult r = run_search(cfg, nullptr);
  ASSERT_FALSE(r.top.empty());
  EXPECT_TRUE(r.improved());
  EXPECT_GT(r.top.front().score, r.baseline_score);
  // Trajectory is monotone non-decreasing (best-so-far).
  for (size_t i = 1; i < r.trajectory.size(); ++i) {
    EXPECT_GE(r.trajectory[i], r.trajectory[i - 1]);
  }
  EXPECT_EQ(r.evaluations, 48);
}

TEST(Search, TopFindingsAreDedupedByCliLine) {
  SearchConfig cfg;
  cfg.objective = "planted:1";
  cfg.budget = 60;
  cfg.seed = 5;
  cfg.top_k = 10;
  const SearchResult r = run_search(cfg, nullptr);
  for (size_t i = 0; i < r.top.size(); ++i) {
    for (size_t j = i + 1; j < r.top.size(); ++j) {
      EXPECT_NE(r.top[i].cli, r.top[j].cli);
    }
  }
}

// ---- Eval summary codec ------------------------------------------------

TEST(Search, EvalSummaryCodecRoundTripsExactly) {
  EvalSummary s;
  s.capacity_mbps = 48.125;
  s.available_mbps = 31.0 / 3.0;
  FlowOutcome f;
  f.mbps = 0.1 + 0.2;  // not exactly 0.3: codec must keep the bits
  f.rtt_p50_ms = 17.25;
  f.rtt_p95_ms = 41.5;
  f.loss_pct = 2.0 / 7.0;
  f.recovery_sec = -1.0;
  s.flows = {f, f};

  const ResultCodec<EvalSummary> codec = eval_summary_codec();
  const EvalSummary back = codec.decode(codec.encode(s));
  EXPECT_EQ(back.capacity_mbps, s.capacity_mbps);
  EXPECT_EQ(back.available_mbps, s.available_mbps);
  ASSERT_EQ(back.flows.size(), 2u);
  EXPECT_EQ(back.flows[0].mbps, f.mbps);
  EXPECT_EQ(back.flows[0].loss_pct, f.loss_pct);
  EXPECT_EQ(back.flows[1].recovery_sec, f.recovery_sec);
}

// ---- Corpus ------------------------------------------------------------

TEST(Corpus, EntryFormatParsesBackExactly) {
  CorpusEntry e;
  e.objective = "scavenger-utility";
  e.score = 0.1 + 0.2;  // hex-float transport: exact bits
  e.status = "ok";
  e.tolerance = 0.015625;
  e.search_seed = 42;
  e.cli = "proteus_sim --bw=50 --flows=proteus-s,cubic";

  CorpusEntry back;
  std::string error;
  ASSERT_TRUE(parse_corpus_entry(format_corpus_entry(e), back, error))
      << error;
  EXPECT_EQ(back.objective, e.objective);
  EXPECT_EQ(back.score, e.score);
  EXPECT_EQ(back.status, e.status);
  EXPECT_EQ(back.tolerance, e.tolerance);
  EXPECT_EQ(back.search_seed, e.search_seed);
  EXPECT_EQ(back.cli, e.cli);
}

TEST(Corpus, RejectsMalformedEntries) {
  CorpusEntry out;
  std::string error;
  EXPECT_FALSE(parse_corpus_entry("objective: x\n", out, error));  // no cli
  EXPECT_FALSE(parse_corpus_entry("not a key-value line\n", out, error));
  EXPECT_FALSE(
      parse_corpus_entry("mystery: 1\ncli: proteus_sim\n", out, error));
}

TEST(Corpus, WriteListReplayRoundTrip) {
  const std::string dir = tmp_dir("proteus_corpus_test");

  // A planted entry replays analytically (fast) through the same path.
  SearchConfig cfg;
  cfg.objective = "planted:7";
  cfg.budget = 32;
  cfg.seed = 3;
  const SearchResult r = run_search(cfg, nullptr);
  ASSERT_FALSE(r.top.empty());
  const CorpusEntry entry = corpus_entry_from_finding(
      cfg.objective, cfg.seed, cfg.tolerance, r.top.front());

  std::string error;
  const std::string path = write_corpus_entry(dir, entry, error);
  ASSERT_FALSE(path.empty()) << error;
  // Idempotent: same entry -> same deterministic filename.
  EXPECT_EQ(write_corpus_entry(dir, entry, error), path);
  const std::vector<std::string> files = list_corpus_files(dir);
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], path);

  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  CorpusEntry loaded;
  ASSERT_TRUE(parse_corpus_entry(text, loaded, error)) << error;

  const ReplayOutcome ok = replay_corpus_entry(loaded);
  EXPECT_TRUE(ok.ok) << ok.message;
  EXPECT_EQ(ok.replayed_score, entry.score);

  // A tampered score must fail replay.
  loaded.score += 10.0;
  const ReplayOutcome drift = replay_corpus_entry(loaded);
  EXPECT_FALSE(drift.ok);
  EXPECT_NE(drift.message.find("score drifted"), std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST(Corpus, SimBackedEntryReplaysWithinTolerance) {
  // Evaluate one real scenario through the search path and pin it.
  const SearchConfig cfg = small_sim_config(1);
  const SearchResult r = run_search(cfg, nullptr);
  ASSERT_FALSE(r.top.empty());
  ASSERT_EQ(r.top.front().status, RunStatus::kOk);
  const CorpusEntry entry = corpus_entry_from_finding(
      cfg.objective, cfg.seed, cfg.tolerance, r.top.front());
  const ReplayOutcome outcome = replay_corpus_entry(entry);
  EXPECT_TRUE(outcome.ok) << outcome.message;
  // The sim is deterministic, so the replay is exact, not just close.
  EXPECT_EQ(outcome.replayed_score, entry.score);
}

}  // namespace
}  // namespace proteus
