// Unit tests for the Proteus-H cross-layer threshold policy (section 4.4).
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid_threshold.h"

namespace proteus {
namespace {

struct Rig {
  Rig() : state(std::make_shared<HybridThresholdState>()), policy(state) {}
  std::shared_ptr<HybridThresholdState> state;
  HybridThresholdPolicy policy;
};

TEST(HybridThreshold, SufficientRateRule) {
  Rig rig;
  // Plenty of buffer space: only rule (1) applies -> G * bitrate_max.
  rig.policy.on_chunk_request(/*max=*/40.0, /*current=*/10.0,
                              /*free_chunks=*/5.0);
  EXPECT_DOUBLE_EQ(rig.state->threshold_mbps(), 1.5 * 40.0);
}

TEST(HybridThreshold, BufferLimitRuleTightensNearFull) {
  Rig rig;
  // f = 1 free chunk: threshold <= bitrate_cur / (2 - 1) = bitrate_cur.
  rig.policy.on_chunk_request(40.0, 10.0, 1.0);
  EXPECT_DOUBLE_EQ(rig.state->threshold_mbps(), 10.0);
  // f = 0.5: threshold <= 10 / 1.5.
  rig.policy.on_chunk_request(40.0, 10.0, 0.5);
  EXPECT_NEAR(rig.state->threshold_mbps(), 10.0 / 1.5, 1e-9);
}

TEST(HybridThreshold, BufferRuleOnlyBelowTwoChunks) {
  Rig rig;
  rig.policy.on_chunk_request(40.0, 1.0, 2.5);
  EXPECT_DOUBLE_EQ(rig.state->threshold_mbps(), 60.0);  // rule 2 inactive
}

TEST(HybridThreshold, EmergencyRuleOverridesEverything) {
  Rig rig;
  rig.policy.on_chunk_request(40.0, 10.0, 0.5);
  rig.policy.on_rebuffer_start();
  EXPECT_GE(rig.state->threshold_mbps(), 1e9);
  EXPECT_TRUE(rig.policy.rebuffering());
  // Chunk requests during a stall do not lower the threshold.
  rig.policy.on_chunk_request(40.0, 10.0, 0.5);
  EXPECT_GE(rig.state->threshold_mbps(), 1e9);
}

TEST(HybridThreshold, RebufferEndRestoresRules) {
  Rig rig;
  rig.policy.on_chunk_request(40.0, 10.0, 5.0);
  rig.policy.on_rebuffer_start();
  rig.policy.on_rebuffer_end();
  EXPECT_FALSE(rig.policy.rebuffering());
  EXPECT_DOUBLE_EQ(rig.state->threshold_mbps(), 60.0);
}

TEST(HybridThreshold, MaxOfRulesIsTaken) {
  Rig rig;
  // Buffer-limit rule dominates (smaller than G * max).
  rig.policy.on_chunk_request(40.0, 30.0, 1.5);
  EXPECT_DOUBLE_EQ(rig.state->threshold_mbps(), 60.0);  // 30/(0.5) = 60 = G*40
  rig.policy.on_chunk_request(40.0, 20.0, 1.5);
  EXPECT_DOUBLE_EQ(rig.state->threshold_mbps(), 40.0);  // 20/0.5 < 60
}

TEST(HybridThreshold, DefaultStateIsEffectivelyPrimary) {
  HybridThresholdState s;
  EXPECT_GE(s.threshold_mbps(), 1e6);
}

}  // namespace
}  // namespace proteus
