// Tests for run_parallel(): scheduling correctness (result order, worker
// counts, exception propagation) and the determinism guarantee the bench
// sweeps rely on — identical results for --jobs=1 and --jobs=N.
#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <stdexcept>
#include <vector>

#include "harness/experiments.h"
#include "harness/parallel_runner.h"

namespace proteus {
namespace {

TEST(ParallelRunner, DefaultJobCountIsPositive) {
  EXPECT_GE(default_job_count(), 1);
}

TEST(ParallelRunner, EmptyQueueReturnsEmpty) {
  std::vector<std::function<int()>> tasks;
  EXPECT_TRUE(run_parallel(std::move(tasks), 4).empty());

  std::vector<std::function<int()>> tasks_serial;
  EXPECT_TRUE(run_parallel(std::move(tasks_serial), 1).empty());
}

TEST(ParallelRunner, SingleWorkerRunsSerially) {
  // jobs=1 must execute on the calling thread in submission order.
  std::vector<int> order;
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([i, &order] {
      order.push_back(i);  // safe: no threads with jobs=1
      return i * i;
    });
  }
  const std::vector<int> results = run_parallel(std::move(tasks), 1);
  ASSERT_EQ(results.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ParallelRunner, MoreTasksThanWorkers) {
  // 100 tasks on 3 workers: every task must run exactly once and land at
  // its own index.
  std::atomic<int> executions{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([i, &executions] {
      executions.fetch_add(1);
      return i * i;
    });
  }
  const std::vector<int> results = run_parallel(std::move(tasks), 3);
  ASSERT_EQ(results.size(), 100u);
  EXPECT_EQ(executions.load(), 100);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
  }
}

TEST(ParallelRunner, MoreWorkersThanTasks) {
  // The worker count is clamped to the task count; excess jobs are not an
  // error and spawn no idle threads.
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 3; ++i) {
    tasks.push_back([i] { return 10 + i; });
  }
  const std::vector<int> results = run_parallel(std::move(tasks), 64);
  EXPECT_EQ(results, (std::vector<int>{10, 11, 12}));
}

TEST(ParallelRunner, ExceptionPropagatesWithoutHanging) {
  // A throwing task must rethrow on the caller after the pool drains —
  // never deadlock, never terminate.
  for (int jobs : {1, 4}) {
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 20; ++i) {
      tasks.push_back([i]() -> int {
        if (i == 7) throw std::runtime_error("task 7 failed");
        return i;
      });
    }
    EXPECT_THROW(run_parallel(std::move(tasks), jobs), std::runtime_error)
        << "jobs=" << jobs;
  }
}

TEST(ParallelRunner, ExceptionAbandonsRemainingTasks) {
  // After the first failure, not-yet-started tasks are skipped (the abort
  // flag stops the queue). With one worker the count is deterministic.
  std::atomic<int> executions{0};
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([i, &executions]() -> int {
      executions.fetch_add(1);
      if (i == 3) throw std::runtime_error("boom");
      return i;
    });
  }
  EXPECT_THROW(run_parallel(std::move(tasks), 1), std::runtime_error);
  EXPECT_EQ(executions.load(), 4);  // tasks 0..3 ran, 4..19 abandoned
}

// ---- run_parallel_settled: exception-safe variant ---------------------

TEST(ParallelRunner, SettledRunsEveryTaskDespiteFailures) {
  // Unlike run_parallel, a throwing task must not abandon the rest of the
  // queue: every task runs, failures land as per-slot errors.
  for (int jobs : {1, 4}) {
    std::atomic<int> executions{0};
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 20; ++i) {
      tasks.push_back([i, &executions]() -> int {
        executions.fetch_add(1);
        if (i % 5 == 3) throw std::runtime_error("task " + std::to_string(i));
        return i * 2;
      });
    }
    const std::vector<TaskOutcome<int>> outcomes =
        run_parallel_settled(std::move(tasks), jobs);
    ASSERT_EQ(outcomes.size(), 20u) << "jobs=" << jobs;
    EXPECT_EQ(executions.load(), 20) << "jobs=" << jobs;
    for (int i = 0; i < 20; ++i) {
      const TaskOutcome<int>& o = outcomes[static_cast<size_t>(i)];
      if (i % 5 == 3) {
        EXPECT_FALSE(o.ok()) << "task " << i;
        EXPECT_THROW(std::rethrow_exception(o.error), std::runtime_error);
      } else {
        ASSERT_TRUE(o.ok()) << "task " << i;
        EXPECT_EQ(o.value, i * 2);
      }
    }
  }
}

TEST(ParallelRunner, SettledAllFailingStillCompletes) {
  // All tasks throwing is the worst case: the pool must drain and return
  // (no deadlock, no std::terminate), with every slot holding its error.
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([]() -> int { throw std::runtime_error("boom"); });
  }
  const std::vector<TaskOutcome<int>> outcomes =
      run_parallel_settled(std::move(tasks), 4);
  ASSERT_EQ(outcomes.size(), 8u);
  for (const TaskOutcome<int>& o : outcomes) EXPECT_FALSE(o.ok());
}

TEST(ParallelRunner, SettledEmptyQueue) {
  std::vector<std::function<int()>> tasks;
  EXPECT_TRUE(run_parallel_settled(std::move(tasks), 4).empty());
}

TEST(ParallelRunner, SettledPreservesSubmissionOrder) {
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 50; ++i) tasks.push_back([i] { return 100 + i; });
  const std::vector<TaskOutcome<int>> outcomes =
      run_parallel_settled(std::move(tasks), 8);
  ASSERT_EQ(outcomes.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(outcomes[static_cast<size_t>(i)].ok());
    EXPECT_EQ(outcomes[static_cast<size_t>(i)].value, 100 + i);
  }
}

// ---- Determinism: parallel sweeps are bit-identical to serial ---------

// The guarantee the bench binaries depend on: for fixed seeds, a sweep run
// with N workers returns exactly the result a serial loop produces, because
// every task owns its Simulator/Rng and results collect by index.

std::vector<std::function<PairResult()>> make_pair_sweep() {
  std::vector<std::function<PairResult()>> tasks;
  for (double bw : {10.0, 20.0}) {
    for (uint64_t seed : {1u, 2u}) {
      tasks.push_back([bw, seed] {
        ScenarioConfig cfg;
        cfg.bandwidth_mbps = bw;
        cfg.seed = seed;
        return run_pair("cubic", "proteus-s", cfg, from_sec(12), from_sec(4),
                        from_sec(2));
      });
    }
  }
  return tasks;
}

TEST(ParallelRunner, PairSweepBitIdenticalAcrossJobCounts) {
  const std::vector<PairResult> serial = run_parallel(make_pair_sweep(), 1);
  const std::vector<PairResult> parallel4 = run_parallel(make_pair_sweep(), 4);
  ASSERT_EQ(serial.size(), parallel4.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    // Exact equality on purpose: the guarantee is bit-identical, not close.
    EXPECT_EQ(serial[i].primary_alone_mbps, parallel4[i].primary_alone_mbps);
    EXPECT_EQ(serial[i].primary_with_mbps, parallel4[i].primary_with_mbps);
    EXPECT_EQ(serial[i].scavenger_mbps, parallel4[i].scavenger_mbps);
    EXPECT_EQ(serial[i].primary_ratio, parallel4[i].primary_ratio);
    EXPECT_EQ(serial[i].utilization, parallel4[i].utilization);
    EXPECT_EQ(serial[i].primary_with_p95_rtt_ms,
              parallel4[i].primary_with_p95_rtt_ms);
  }
}

std::vector<std::function<FairnessResult()>> make_fairness_sweep() {
  std::vector<std::function<FairnessResult()>> tasks;
  for (const char* proto : {"proteus-s", "cubic"}) {
    for (int n : {2, 3}) {
      tasks.push_back([proto, n] {
        return run_multiflow_fairness(proto, n, 31);
      });
    }
  }
  return tasks;
}

TEST(ParallelRunner, FairnessSweepBitIdenticalAcrossJobCounts) {
  const std::vector<FairnessResult> serial =
      run_parallel(make_fairness_sweep(), 1);
  const std::vector<FairnessResult> parallel4 =
      run_parallel(make_fairness_sweep(), 4);
  ASSERT_EQ(serial.size(), parallel4.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].jain, parallel4[i].jain);
    EXPECT_EQ(serial[i].flow_mbps, parallel4[i].flow_mbps);
  }
}

}  // namespace
}  // namespace proteus
