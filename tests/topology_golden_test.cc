// Topology-equivalence golden suite.
//
// The Dumbbell used by every experiment in the repo is now a thin
// two-node instance of the general Topology graph (sim/topology.h).
// These tests pin that refactor against digests captured from the
// pre-topology seed tree: every protocol's dumbbell run — counters,
// event count, and exported CSV bytes — must stay bit-identical, with
// faults and telemetry on, serially and under the parallel runner.
//
// The digest table below was generated from the seed (pre-refactor)
// code by running this binary with PROTEUS_WRITE_GOLDEN=<path> and
// pasting the emitted table. Regenerate the same way only when a
// deliberate behavior change invalidates it — and say so in the commit.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/factory.h"
#include "harness/fault_spec.h"
#include "harness/parallel_runner.h"
#include "harness/scenario.h"
#include "harness/supervisor.h"
#include "harness/telemetry_export.h"
#include "harness/trace_export.h"

namespace proteus {
namespace {

// FNV-1a 64: stable across runs, platforms, and standard libraries
// (std::hash promises none of that).
uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<FaultSpec> faults_or_die(const std::string& spec) {
  FaultParseResult r = parse_faults(spec);
  EXPECT_TRUE(r.ok) << r.error;
  return r.faults;
}

// One line of the golden table: everything observable about a run,
// formatted so a mismatch diff names the divergent quantity.
std::string digest_line(const std::string& tag,
                        const std::vector<int64_t>& counters,
                        const std::vector<uint64_t>& hashes) {
  std::ostringstream os;
  os << tag;
  for (int64_t c : counters) os << ' ' << c;
  for (uint64_t h : hashes) os << ' ' << std::hex << h << std::dec;
  return os.str();
}

// fig03-style two-flow dumbbell; the same shape engine_golden_test.cc
// uses, digested to a single golden line.
std::string run_protocol(const std::string& protocol, const std::string& tag) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 50;
  cfg.rtt_ms = 30;
  cfg.seed = 7;
  Scenario sc(cfg);
  Flow& a = sc.add_flow(protocol, 0);
  Flow& b = sc.add_flow(protocol, from_sec(1));
  sc.run_until(from_sec(6));

  const std::string base = ::testing::TempDir() + "/topo_golden_" + tag;
  EXPECT_TRUE(write_throughput_csv(base + ".csv", {&a, &b}, from_sec(6)));
  EXPECT_TRUE(write_rtt_csv(base + "_rtt.csv", a));
  EXPECT_TRUE(write_link_stats_csv(base + "_link.csv",
                                   sc.dumbbell().bottleneck().stats()));

  std::vector<int64_t> counters;
  for (const Flow* f : {&a, &b}) {
    const SenderStats& ss = f->sender().stats();
    counters.insert(counters.end(),
                    {ss.packets_sent, ss.bytes_sent, ss.packets_acked,
                     ss.bytes_delivered, ss.packets_lost,
                     static_cast<int64_t>(f->receiver().bytes_received())});
  }
  const LinkStats& st = sc.dumbbell().bottleneck().stats();
  counters.insert(counters.end(),
                  {st.offered_packets, st.delivered_packets, st.tail_drops,
                   st.max_queue_bytes,
                   static_cast<int64_t>(sc.sim().events_processed())});
  return digest_line(protocol, counters,
                     {fnv1a(slurp(base + ".csv")),
                      fnv1a(slurp(base + "_rtt.csv")),
                      fnv1a(slurp(base + "_link.csv"))});
}

// Fault timeline (blackout, reorder, duplicate, ackloss, ackburst) with
// per-MI telemetry export: exercises the reverse-path fault hooks and
// the aggregator pass-through alongside the forward-link machinery.
std::string run_faulted(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "/topo_golden_fault_" + tag;
  TelemetryConfig tcfg;
  tcfg.dir = dir;
  tcfg.every = 1;
  RunContext ctx(/*attempt=*/0, /*wall_timeout_sec=*/0,
                 /*sim_timeout_sec=*/0, /*trace_capacity=*/64);
  ctx.set_telemetry(&tcfg, "golden");

  ScenarioConfig cfg;
  cfg.seed = 42;
  cfg.faults = faults_or_die(
      "blackout@3:1,reorder@5:p=0.1:delta=20ms:2,duplicate@7:p=0.05:2,"
      "ackloss@9:p=0.2:1,ackburst@10:200ms");
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  Flow& g = sc.add_flow("cubic", from_sec(1));
  std::string jsonl;
  {
    FlowTelemetrySession session(&ctx, f, "flow0");
    sc.run_until(from_sec(12));
  }  // exports on destruction
  jsonl = slurp(dir + "/golden-flow0.jsonl");

  const std::string base = dir + "/out";
  EXPECT_TRUE(write_throughput_csv(base + ".csv", {&f, &g}, from_sec(12)));
  EXPECT_TRUE(write_rtt_csv(base + "_rtt.csv", f));
  EXPECT_TRUE(write_link_stats_csv(base + "_link.csv",
                                   sc.dumbbell().bottleneck().stats()));
  const LinkStats& st = sc.dumbbell().bottleneck().stats();
  return digest_line(
      "faulted",
      {st.blackout_drops, st.reordered, st.duplicated, st.ack_drops,
       static_cast<int64_t>(sc.sim().events_processed())},
      {fnv1a(jsonl), fnv1a(slurp(base + ".csv")),
       fnv1a(slurp(base + "_rtt.csv")), fnv1a(slurp(base + "_link.csv"))});
}

// Golden digests captured from the pre-topology seed tree. One line per
// protocol plus the faulted/telemetry run.
constexpr char kGolden[] = R"GOLDEN(
proteus-s 1022 1533000 1015 1522500 0 1528500 4653 6979500 4621 6931500 0 6954000 5675 5673 0 76500 28880 81fe1d348418c17 78cfc6a563f694bc bc4ecdb723c9ee39
ledbat 23708 35562000 23058 34587000 297 34680000 1246 1869000 1187 1780500 39 1780500 24954 24370 336 375000 97295 6ea3ce7cf1d0f10 27c63a8452701955 703316295f5d0ceb
cubic 20500 30750000 19729 29593500 531 29607000 5032 7548000 4792 7188000 159 7267500 25532 24646 690 375000 98419 4723b2dbff3e2f48 5647278e5fcc8b74 3cd26675df75ca38
bbr 17179 25768500 17086 25629000 0 25683000 7224 10836000 7159 10738500 0 10777500 24403 24370 0 268500 120303 9cbdd65f3f8b7f21 a96d07217e2ee200 ea33983b7b6f082
proteus-p 1093 1639500 1087 1630500 0 1635000 7757 11635500 7706 11559000 0 11595000 8850 8849 0 76500 44717 e753ca233238e12 d4d209cd8d3eb930 7a41f53654e206bd
copa 16363 24544500 16295 24442500 0 24490500 7696 11544000 7633 11449500 0 11494500 24059 24053 0 160500 103380 8a4d4a7ac66ddea3 361ea3bd0c89904c 3c1b3b46329a244c
vivace 1193 1789500 1180 1770000 7 1773000 17640 26460000 17253 25879500 280 25959000 18833 18546 287 375000 93331 e45125808fb94f42 6b5ec9797c04c7a2 263b11d433cba446
proteus-h 1093 1639500 1087 1630500 0 1635000 7757 11635500 7706 11559000 0 11595000 8850 8849 0 76500 44717 e753ca233238e12 d4d209cd8d3eb930 7a41f53654e206bd
faulted 288 89 148 422 97066 e6d319fc0eb60273 78f75557d98d73fc fbc3223937cdf8e0 7f7efcf83dc70daf
)GOLDEN";

std::vector<std::string> golden_lines() {
  std::vector<std::string> lines;
  std::istringstream in(kGolden);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::vector<std::string> current_lines() {
  std::vector<std::string> lines;
  std::vector<std::string> protocols = all_protocol_names();
  protocols.push_back("proteus-h");
  EXPECT_EQ(protocols.size(), 8u);
  for (const std::string& p : protocols) {
    lines.push_back(run_protocol(p, p));
  }
  lines.push_back(run_faulted("serial"));
  return lines;
}

// With PROTEUS_WRITE_GOLDEN=<path> the suite emits the current digest
// table (for pasting into kGolden above) instead of comparing.
bool maybe_write_golden(const std::vector<std::string>& lines) {
  const char* path = std::getenv("PROTEUS_WRITE_GOLDEN");
  if (path == nullptr) return false;
  std::ofstream os(path);
  for (const std::string& l : lines) os << l << '\n';
  return true;
}

// Every protocol must reproduce the seed dumbbell bit-for-bit now that
// the dumbbell is a two-node topology instance.
TEST(TopologyGolden, DumbbellMatchesSeedDigestsAllProtocols) {
  const std::vector<std::string> current = current_lines();
  if (maybe_write_golden(current)) {
    GTEST_SKIP() << "wrote golden table to $PROTEUS_WRITE_GOLDEN";
  }
  const std::vector<std::string> golden = golden_lines();
  ASSERT_EQ(golden.size(), current.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(golden[i], current[i]);
  }
}

// The same digests hold under the parallel runner at --jobs=4: worker
// count must never leak into any run artifact.
TEST(TopologyGolden, ParallelJobsMatchSeedDigests) {
  if (std::getenv("PROTEUS_WRITE_GOLDEN") != nullptr) {
    GTEST_SKIP() << "golden write mode";
  }
  std::vector<std::string> protocols = all_protocol_names();
  protocols.push_back("proteus-h");
  std::vector<std::function<std::string()>> tasks;
  for (const std::string& p : protocols) {
    tasks.push_back([p] { return run_protocol(p, p + "_par"); });
  }
  tasks.push_back([] { return run_faulted("par"); });
  const std::vector<std::string> parallel =
      run_parallel(std::move(tasks), 4);
  const std::vector<std::string> golden = golden_lines();
  ASSERT_EQ(golden.size(), parallel.size());
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(golden[i], parallel[i]);
  }
}

}  // namespace
}  // namespace proteus
