// Unit tests for monitor-interval accounting and metric computation.
#include <gtest/gtest.h>

#include "core/monitor_interval.h"

namespace proteus {
namespace {

TEST(MonitorInterval, SeqRangeMembership) {
  MonitorInterval mi(1, 10.0, from_ms(100), from_ms(30));
  EXPECT_FALSE(mi.contains_seq(5));  // no packets yet
  mi.on_packet_sent(5, kMtuBytes, from_ms(101));
  mi.on_packet_sent(6, kMtuBytes, from_ms(110));
  mi.on_packet_sent(7, kMtuBytes, from_ms(120));
  EXPECT_TRUE(mi.contains_seq(5));
  EXPECT_TRUE(mi.contains_seq(7));
  EXPECT_FALSE(mi.contains_seq(4));
  EXPECT_FALSE(mi.contains_seq(8));
  EXPECT_TRUE(mi.contains_time(from_ms(100)));
  EXPECT_TRUE(mi.contains_time(from_ms(129)));
  EXPECT_FALSE(mi.contains_time(from_ms(130)));
}

TEST(MonitorInterval, CompletionRequiresSealAndResolution) {
  MonitorInterval mi(1, 10.0, 0, from_ms(30));
  mi.on_packet_sent(0, kMtuBytes, from_ms(1));
  mi.on_packet_sent(1, kMtuBytes, from_ms(2));
  EXPECT_FALSE(mi.complete());
  mi.seal();
  EXPECT_FALSE(mi.complete());  // packets unresolved
  mi.on_ack(0, kMtuBytes, from_ms(1), from_ms(30), true);
  mi.on_loss(1);
  EXPECT_TRUE(mi.complete());
}

TEST(MonitorInterval, ThroughputAndLossRates) {
  MonitorInterval mi(1, 10.0, 0, from_ms(100));
  for (uint64_t i = 0; i < 10; ++i) {
    mi.on_packet_sent(i, kMtuBytes, from_ms(static_cast<double>(i)));
  }
  for (uint64_t i = 0; i < 8; ++i) {
    mi.on_ack(i, kMtuBytes, from_ms(static_cast<double>(i)), from_ms(20),
              true);
  }
  mi.on_loss(8);
  mi.on_loss(9);
  mi.seal();
  ASSERT_TRUE(mi.complete());
  const MiMetrics m = mi.compute();
  EXPECT_DOUBLE_EQ(m.loss_rate, 0.2);
  // 10 * 1500B in 100 ms = 1.2 Mbps sent; 8/10 of that acked.
  EXPECT_NEAR(m.send_rate_mbps, 1.2, 1e-9);
  EXPECT_NEAR(m.throughput_mbps, 0.96, 1e-9);
  EXPECT_TRUE(m.useful);
  EXPECT_EQ(m.rtt_samples, 8);
}

TEST(MonitorInterval, GradientFromLinearlyRisingRtt) {
  MonitorInterval mi(1, 10.0, 0, from_ms(100));
  // RTT rises 1 ms per 10 ms of send time -> gradient 0.1 s/s.
  for (uint64_t i = 0; i < 10; ++i) {
    const TimeNs sent = from_ms(static_cast<double>(10 * i));
    mi.on_packet_sent(i, kMtuBytes, sent);
    mi.on_ack(i, kMtuBytes, sent, from_ms(20.0 + static_cast<double>(i)),
              true);
  }
  mi.seal();
  const MiMetrics m = mi.compute();
  EXPECT_NEAR(m.rtt_gradient_raw, 0.1, 1e-9);
  EXPECT_NEAR(m.regression_error, 0.0, 1e-9);
  EXPECT_NEAR(m.avg_rtt_sec, 0.0245, 1e-9);
}

TEST(MonitorInterval, DeviationOfAlternatingRtt) {
  MonitorInterval mi(1, 10.0, 0, from_ms(100));
  for (uint64_t i = 0; i < 10; ++i) {
    const TimeNs sent = from_ms(static_cast<double>(10 * i));
    mi.on_packet_sent(i, kMtuBytes, sent);
    // Alternating 20/22 ms -> population stddev exactly 1 ms.
    mi.on_ack(i, kMtuBytes, sent, from_ms(i % 2 == 0 ? 20.0 : 22.0), true);
  }
  mi.seal();
  const MiMetrics m = mi.compute();
  EXPECT_NEAR(m.rtt_dev_raw_sec, 1e-3, 1e-12);
  EXPECT_GT(m.regression_error, 0.0);
}

TEST(MonitorInterval, RejectedRttSamplesExcludedFromLatencyStats) {
  MonitorInterval mi(1, 10.0, 0, from_ms(100));
  for (uint64_t i = 0; i < 4; ++i) {
    mi.on_packet_sent(i, kMtuBytes, from_ms(static_cast<double>(i)));
  }
  mi.on_ack(0, kMtuBytes, 0, from_ms(20), true);
  mi.on_ack(1, kMtuBytes, 0, from_ms(500), false);  // filtered spike
  mi.on_ack(2, kMtuBytes, 0, from_ms(20), true);
  mi.on_ack(3, kMtuBytes, 0, from_ms(20), true);
  mi.seal();
  const MiMetrics m = mi.compute();
  EXPECT_EQ(m.rtt_samples, 3);
  EXPECT_NEAR(m.rtt_dev_raw_sec, 0.0, 1e-12);
  EXPECT_EQ(m.packets_acked, 4);  // throughput still counts everything
}

TEST(MonitorInterval, EmptyMiNotUseful) {
  MonitorInterval mi(1, 10.0, 0, from_ms(30));
  mi.seal();
  EXPECT_TRUE(mi.complete());
  EXPECT_FALSE(mi.compute().useful);
}

TEST(MonitorInterval, AllLostMiIsUsefulWithFullLossRate) {
  MonitorInterval mi(1, 10.0, 0, from_ms(30));
  mi.on_packet_sent(0, kMtuBytes, 0);
  mi.on_packet_sent(1, kMtuBytes, from_ms(1));
  mi.on_loss(0);
  mi.on_loss(1);
  mi.seal();
  const MiMetrics m = mi.compute();
  EXPECT_FALSE(m.useful);  // needs at least one ack for latency stats
  EXPECT_DOUBLE_EQ(m.loss_rate, 1.0);
}

}  // namespace
}  // namespace proteus
