// Unit tests for the experiment harness: protocol factory, scenario
// wiring, table formatting, and the shared experiment routines.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "harness/experiments.h"
#include "harness/factory.h"
#include "harness/scenario.h"
#include "harness/table.h"

namespace proteus {
namespace {

TEST(Factory, AllNamesConstruct) {
  for (const char* name :
       {"cubic", "bbr", "bbr-s", "copa", "vivace", "allegro", "ledbat",
        "ledbat-25", "proteus-p", "proteus-s", "proteus-h"}) {
    auto cc = make_protocol(name, 1);
    ASSERT_NE(cc, nullptr) << name;
    EXPECT_EQ(cc->name(), name);
  }
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW(make_protocol("quic-bb3", 1), std::invalid_argument);
}

TEST(Factory, ScavengerClassification) {
  EXPECT_TRUE(is_scavenger_protocol("proteus-s"));
  EXPECT_TRUE(is_scavenger_protocol("ledbat"));
  EXPECT_TRUE(is_scavenger_protocol("ledbat-25"));
  EXPECT_TRUE(is_scavenger_protocol("bbr-s"));
  EXPECT_FALSE(is_scavenger_protocol("cubic"));
  EXPECT_FALSE(is_scavenger_protocol("proteus-p"));
}

TEST(Factory, TuningReachesProteus) {
  ProtocolTuning tuning;
  tuning.utility.d = 123.0;
  auto cc = make_protocol("proteus-s", 1, nullptr, &tuning);
  EXPECT_EQ(cc->name(), "proteus-s");  // constructed through the override
}

TEST(Factory, HybridGetsDefaultThresholdWhenNull) {
  auto cc = make_protocol("proteus-h", 1, nullptr);
  EXPECT_EQ(cc->name(), "proteus-h");
}

TEST(Scenario, BdpMath) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.rtt_ms = 40.0;
  EXPECT_NEAR(cfg.bdp_bytes(), 500'000.0, 1.0);
}

TEST(Scenario, FlowIdsAndSeedsUnique) {
  ScenarioConfig cfg;
  Scenario sc(cfg);
  Flow& a = sc.add_flow("cubic", 0);
  Flow& b = sc.add_flow("cubic", 0);
  EXPECT_NE(a.config().id, b.config().id);
  EXPECT_NE(sc.flow_seed(a.config().id), sc.flow_seed(b.config().id));
}

TEST(Scenario, BaseRttMatchesConfig) {
  ScenarioConfig cfg;
  cfg.rtt_ms = 70.0;
  Scenario sc(cfg);
  EXPECT_EQ(sc.dumbbell().base_rtt(), from_ms(70));
}

TEST(Table, AlignedOutput) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // All three content lines plus the separator.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = ::testing::TempDir() + "/table.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Experiments, SingleFlowResultConsistency) {
  ScenarioConfig cfg;
  cfg.seed = 13;
  const SingleFlowResult r =
      run_single_flow("cubic", cfg, from_sec(30), from_sec(10));
  EXPECT_NEAR(r.utilization, r.throughput_mbps / cfg.bandwidth_mbps, 1e-9);
  EXPECT_GE(r.p95_rtt_ms, cfg.rtt_ms);
  EXPECT_GE(r.inflation_ratio_95, 0.0);
}

TEST(Experiments, PairResultRatios) {
  ScenarioConfig cfg;
  cfg.seed = 14;
  const PairResult r =
      run_pair("cubic", "cubic", cfg, from_sec(120), from_sec(40));
  // Two CUBICs split the link: ratio near 0.5 (convergence is slow, so
  // allow a generous band), utilization near 1.
  EXPECT_GT(r.primary_ratio, 0.35);
  EXPECT_LT(r.primary_ratio, 0.75);
  EXPECT_GT(r.utilization, 0.9);
  EXPECT_GT(r.rtt_ratio, 0.8);
}

TEST(Experiments, TimeSeriesShape) {
  ScenarioConfig cfg;
  cfg.seed = 15;
  const auto series =
      run_time_series({"cubic"}, cfg, from_sec(0), from_sec(12));
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].size(), 12u);
}

}  // namespace
}  // namespace proteus
