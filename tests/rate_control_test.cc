// Unit tests for the gradient-ascent rate controller state machine.
#include <gtest/gtest.h>

#include "core/rate_control.h"

namespace proteus {
namespace {

RateControlConfig base_config() {
  RateControlConfig cfg;
  cfg.initial_rate_mbps = 2.0;
  cfg.min_rate_mbps = 0.2;
  cfg.max_rate_mbps = 1000.0;
  return cfg;
}

// Drives one MI through plan/complete with a caller-supplied utility.
double step(GradientRateController& c, double utility) {
  const auto plan = c.plan_next_mi();
  c.on_mi_complete(plan.tag, utility);
  return plan.rate_mbps;
}

TEST(RateControl, StartingDoublesWhileUtilityImproves) {
  GradientRateController c(base_config(), 1);
  double u = 1.0;
  double last_rate = 0.0;
  for (int i = 0; i < 5; ++i) {
    last_rate = step(c, u);
    u *= 2;  // always improving
  }
  EXPECT_EQ(c.state(), GradientRateController::State::kStarting);
  EXPECT_GT(c.base_rate_mbps(), last_rate);  // still growing
  EXPECT_NEAR(c.base_rate_mbps(), 2.0 * 32, 1.0);
}

TEST(RateControl, StartingRevertsOnUtilityDrop) {
  GradientRateController c(base_config(), 1);
  step(c, 10.0);   // 2 -> 4
  step(c, 20.0);   // 4 -> 8
  const double good_rate = step(c, 30.0);  // 8 -> 16
  step(c, 5.0);    // regression: revert to the last good rate
  EXPECT_EQ(c.state(), GradientRateController::State::kProbing);
  EXPECT_DOUBLE_EQ(c.base_rate_mbps(), good_rate);
}

TEST(RateControl, ProbingIssuesPairedTrials) {
  RateControlConfig cfg = base_config();
  cfg.probe_pairs = 3;
  GradientRateController c(cfg, 2);
  step(c, 10.0);
  step(c, 1.0);  // enter probing
  const double base = c.base_rate_mbps();
  int high = 0, low = 0;
  for (int i = 0; i < 6; ++i) {
    const auto plan = c.plan_next_mi();
    if (plan.rate_mbps > base) ++high;
    if (plan.rate_mbps < base) ++low;
    c.on_mi_complete(plan.tag, 1.0);  // fed later; rates all "equal"
  }
  EXPECT_EQ(high, 3);
  EXPECT_EQ(low, 3);
}

TEST(RateControl, MajorityVoteMovesUp) {
  RateControlConfig cfg = base_config();
  cfg.probe_pairs = 3;
  GradientRateController c(cfg, 3);
  step(c, 10.0);
  step(c, 1.0);  // probing around the reverted rate
  const double base = c.base_rate_mbps();
  // Higher rate always yields higher utility -> unanimous up.
  for (int i = 0; i < 6; ++i) {
    const auto plan = c.plan_next_mi();
    c.on_mi_complete(plan.tag, plan.rate_mbps > base ? 5.0 : 1.0);
  }
  EXPECT_EQ(c.state(), GradientRateController::State::kMoving);
  EXPECT_GT(c.base_rate_mbps(), base);
}

TEST(RateControl, MajorityVoteMovesDownOnTwoOfThree) {
  RateControlConfig cfg = base_config();
  cfg.probe_pairs = 3;
  GradientRateController c(cfg, 4);
  step(c, 10.0);
  step(c, 1.0);
  const double base = c.base_rate_mbps();
  int pair = 0;
  for (int i = 0; i < 6; ++i) {
    const auto plan = c.plan_next_mi();
    const bool is_high = plan.rate_mbps > base;
    // First pair votes up; the other two vote down: majority down.
    double u;
    if (i < 2) {
      u = is_high ? 5.0 : 1.0;
    } else {
      u = is_high ? 1.0 : 5.0;
    }
    c.on_mi_complete(plan.tag, u);
    (void)pair;
  }
  EXPECT_EQ(c.state(), GradientRateController::State::kMoving);
  EXPECT_LT(c.base_rate_mbps(), base);
}

TEST(RateControl, VivaceTwoPairNeedsUnanimity) {
  RateControlConfig cfg = base_config();
  cfg.probe_pairs = 2;
  GradientRateController c(cfg, 5);
  step(c, 10.0);
  step(c, 1.0);
  const double base = c.base_rate_mbps();
  for (int i = 0; i < 4; ++i) {
    const auto plan = c.plan_next_mi();
    const bool is_high = plan.rate_mbps > base;
    // Split vote: pair 0 up, pair 1 down -> stay probing.
    const double u = (i < 2) == is_high ? 5.0 : 1.0;
    c.on_mi_complete(plan.tag, u);
  }
  EXPECT_EQ(c.state(), GradientRateController::State::kProbing);
  EXPECT_DOUBLE_EQ(c.base_rate_mbps(), base);
}

TEST(RateControl, MovingRevertsOnUtilityDrop) {
  RateControlConfig cfg = base_config();
  cfg.probe_pairs = 3;
  GradientRateController c(cfg, 6);
  step(c, 10.0);
  step(c, 1.0);
  const double base = c.base_rate_mbps();
  for (int i = 0; i < 6; ++i) {
    const auto plan = c.plan_next_mi();
    c.on_mi_complete(plan.tag, plan.rate_mbps > base ? 5.0 : 1.0);
  }
  ASSERT_EQ(c.state(), GradientRateController::State::kMoving);
  const double before_drop = c.base_rate_mbps();
  // Feed improving utilities, then a collapse.
  step(c, 6.0);
  step(c, 7.0);
  EXPECT_GT(c.base_rate_mbps(), before_drop);
  const double prev = c.base_rate_mbps();
  step(c, -100.0);
  EXPECT_EQ(c.state(), GradientRateController::State::kProbing);
  EXPECT_LT(c.base_rate_mbps(), prev);
}

TEST(RateControl, RateStaysWithinBounds) {
  RateControlConfig cfg = base_config();
  cfg.min_rate_mbps = 1.0;
  cfg.max_rate_mbps = 50.0;
  GradientRateController c(cfg, 7);
  for (int i = 0; i < 200; ++i) {
    const auto plan = c.plan_next_mi();
    EXPECT_GE(plan.rate_mbps, 1.0 * (1 - cfg.probe_step));
    EXPECT_LE(plan.rate_mbps, 50.0 * (1 + cfg.probe_step));
    // Utility that always prefers lower rates drives toward min.
    c.on_mi_complete(plan.tag, -plan.rate_mbps);
  }
  EXPECT_LE(c.base_rate_mbps(), 50.0);
  EXPECT_GE(c.base_rate_mbps(), 1.0);
}

TEST(RateControl, AbandonedProbeRestartsRound) {
  RateControlConfig cfg = base_config();
  cfg.probe_pairs = 3;
  GradientRateController c(cfg, 8);
  step(c, 10.0);
  step(c, 1.0);  // probing
  const auto plan1 = c.plan_next_mi();
  const auto plan2 = c.plan_next_mi();
  c.on_mi_complete(plan1.tag, 5.0);
  c.on_mi_abandoned(plan2.tag);  // trial lost: round restarts
  EXPECT_EQ(c.state(), GradientRateController::State::kProbing);
  // A fresh round issues 6 new trials and completes normally.
  const double base = c.base_rate_mbps();
  for (int i = 0; i < 6; ++i) {
    const auto plan = c.plan_next_mi();
    c.on_mi_complete(plan.tag, plan.rate_mbps > base ? 5.0 : 1.0);
  }
  EXPECT_EQ(c.state(), GradientRateController::State::kMoving);
}

TEST(RateControl, StaleCompletionsIgnored) {
  GradientRateController c(base_config(), 9);
  const auto starting_plan = c.plan_next_mi();
  step(c, 10.0);
  step(c, 1.0);  // now probing
  const double base = c.base_rate_mbps();
  c.on_mi_complete(starting_plan.tag, 1000.0);  // stale starting MI
  EXPECT_EQ(c.state(), GradientRateController::State::kProbing);
  EXPECT_DOUBLE_EQ(c.base_rate_mbps(), base);
  c.on_mi_complete(99'999, 1000.0);  // unknown tag: no-op
  EXPECT_DOUBLE_EQ(c.base_rate_mbps(), base);
}

TEST(RateControl, ClampRateAppliesBounds) {
  GradientRateController c(base_config(), 10);
  c.clamp_rate(0.001);
  EXPECT_DOUBLE_EQ(c.base_rate_mbps(), 0.2);
  c.clamp_rate(1e9);
  EXPECT_DOUBLE_EQ(c.base_rate_mbps(), 1000.0);
}

}  // namespace
}  // namespace proteus
