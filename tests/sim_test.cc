// Unit tests for the discrete-event simulator substrate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/dumbbell.h"
#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/noise.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace proteus {
namespace {

class CollectingSink final : public PacketSink {
 public:
  explicit CollectingSink(Simulator* sim) : sim_(sim) {}
  void on_packet(const Packet& pkt) override {
    packets.push_back(pkt);
    arrival_times.push_back(sim_->now());
  }
  std::vector<Packet> packets;
  std::vector<TimeNs> arrival_times;

 private:
  Simulator* sim_;
};

Packet make_packet(uint64_t seq, int64_t bytes = kMtuBytes,
                   FlowId flow = 1) {
  Packet p;
  p.flow_id = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(from_ms(10), [&] { ++fired; });
  sim.schedule_at(from_ms(30), [&] { ++fired; });
  sim.run_until(from_ms(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), from_ms(20));
  sim.run_until(from_ms(40));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(from_ms(5), [] {});
  sim.run_until(from_ms(5));
  EXPECT_THROW(sim.schedule_at(from_ms(1), [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), std::logic_error);
}

TEST(Simulator, NestedSchedulingRuns) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(from_ms(1), recurse);
  };
  sim.schedule_in(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
}

TEST(Link, SerializationAndPropagationTiming) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(12);  // 1500B -> 1 ms serialization
  cfg.prop_delay = from_ms(10);
  Link link(&sim, cfg);
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  link.on_packet(make_packet(0));
  link.on_packet(make_packet(1));
  sim.run();

  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.arrival_times[0], from_ms(11));   // 1ms tx + 10ms prop
  EXPECT_EQ(sink.arrival_times[1], from_ms(12));   // queued behind first
}

TEST(Link, TailDropAtBufferLimit) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(10);
  cfg.buffer_bytes = 3 * kMtuBytes;
  Link link(&sim, cfg);
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  for (uint64_t i = 0; i < 10; ++i) link.on_packet(make_packet(i));
  sim.run();

  EXPECT_EQ(sink.packets.size(), 3u);
  EXPECT_EQ(link.stats().tail_drops, 7);
  // Survivors are the head of the burst (FIFO).
  EXPECT_EQ(sink.packets[0].seq, 0u);
  EXPECT_EQ(sink.packets[2].seq, 2u);
}

TEST(Link, RandomLossRate) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(1000);
  cfg.buffer_bytes = 1'000'000'000;
  cfg.random_loss = 0.2;
  Link link(&sim, cfg);
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  const int n = 20000;
  for (int i = 0; i < n; ++i) link.on_packet(make_packet(i));
  sim.run();

  const double loss =
      static_cast<double>(link.stats().random_drops) / n;
  EXPECT_NEAR(loss, 0.2, 0.02);
}

TEST(Link, FifoPreservedUnderLatencyNoise) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(100);
  Link link(&sim, cfg);
  WifiNoise::Config wcfg;
  wcfg.spike_probability = 0.3;
  link.set_latency_noise(std::make_unique<WifiNoise>(wcfg));
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  for (uint64_t i = 0; i < 200; ++i) link.on_packet(make_packet(i));
  sim.run();

  ASSERT_EQ(sink.packets.size(), 200u);
  for (size_t i = 1; i < sink.packets.size(); ++i) {
    EXPECT_LE(sink.packets[i - 1].seq, sink.packets[i].seq);
    EXPECT_LE(sink.arrival_times[i - 1], sink.arrival_times[i]);
  }
}

TEST(Link, QueueDelayTracksBacklog) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(12);  // 1 ms per packet
  Link link(&sim, cfg);
  CollectingSink sink(&sim);
  link.set_sink(&sink);
  for (uint64_t i = 0; i < 5; ++i) link.on_packet(make_packet(i));
  EXPECT_NEAR(to_ms(link.current_queue_delay()), 5.0, 0.01);
}

TEST(Link, RateProcessScalesThroughput) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(12);
  Link link(&sim, cfg);
  link.set_rate_process(std::make_unique<ConstantRateProcess>(0.5));
  CollectingSink sink(&sim);
  link.set_sink(&sink);
  link.on_packet(make_packet(0));
  sim.run();
  // Half rate -> 2 ms serialization (prop_delay default 15 ms).
  EXPECT_EQ(sink.arrival_times[0], from_ms(2) + cfg.prop_delay);
}

TEST(Noise, GaussianNonNegative) {
  Rng rng(1);
  GaussianNoise noise(from_ms(1), from_ms(5));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(noise.sample(rng, 0), 0);
  }
}

TEST(Noise, WifiSpikesBoundedByCap) {
  Rng rng(2);
  WifiNoise::Config cfg;
  cfg.spike_probability = 1.0;
  cfg.spike_cap = from_ms(50);
  cfg.jitter_stddev = 0;
  WifiNoise noise(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(noise.sample(rng, 0), from_ms(50));
  }
}

TEST(Noise, MarkovProcessStaysInStateSet) {
  Rng rng(3);
  MarkovRateProcess::Config cfg;
  cfg.multipliers = {1.0, 0.5};
  cfg.mean_dwell = from_ms(10);
  MarkovRateProcess p(cfg);
  bool saw_low = false, saw_high = false;
  for (TimeNs t = 0; t < from_sec(2); t += from_ms(1)) {
    double m = p.multiplier(rng, t);
    EXPECT_TRUE(m == 1.0 || m == 0.5);
    saw_low |= m == 0.5;
    saw_high |= m == 1.0;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Noise, MarkovRejectsBadConfig) {
  MarkovRateProcess::Config cfg;
  cfg.multipliers = {};
  EXPECT_THROW(MarkovRateProcess{cfg}, std::invalid_argument);
  cfg.multipliers = {1.0, -0.5};
  EXPECT_THROW(MarkovRateProcess{cfg}, std::invalid_argument);
}

TEST(Dumbbell, RoutesDataAndAcksPerFlow) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck.rate = Bandwidth::from_mbps(100);
  cfg.bottleneck.prop_delay = from_ms(5);
  cfg.reverse_delay = from_ms(5);
  Dumbbell db(&sim, cfg);

  CollectingSink recv1(&sim), recv2(&sim), ack1(&sim);
  db.attach_flow(1, &recv1, &ack1);
  db.attach_flow(2, &recv2, nullptr);

  db.forward_ingress()->on_packet(make_packet(0, kMtuBytes, 1));
  db.forward_ingress()->on_packet(make_packet(0, kMtuBytes, 2));
  db.forward_ingress()->on_packet(make_packet(1, kMtuBytes, 99));  // unknown
  sim.run();

  EXPECT_EQ(recv1.packets.size(), 1u);
  EXPECT_EQ(recv2.packets.size(), 1u);

  Packet ack;
  ack.flow_id = 1;
  ack.is_ack = true;
  db.send_reverse(ack);
  sim.run();
  EXPECT_EQ(ack1.packets.size(), 1u);
  EXPECT_EQ(db.base_rtt(), from_ms(10));
}

TEST(AckAggregator, BlocksThenReleasesBackToBack) {
  Simulator sim;
  AckAggregatorConfig cfg;
  cfg.enabled = true;
  cfg.mean_block_interval = from_ms(20);
  cfg.mean_block_duration = from_ms(30);
  cfg.release_spacing = from_us(10);
  AckAggregator agg(&sim, cfg, 77);
  CollectingSink sink(&sim);

  // Feed a steady ACK stream; blocks must create long-gap-then-burst.
  for (int i = 0; i < 400; ++i) {
    Packet p = make_packet(static_cast<uint64_t>(i));
    sim.schedule_at(from_ms(i), [&agg, &sink, p] { agg.deliver(p, &sink); });
  }
  // The aggregator keeps scheduling future block events; bound the run.
  sim.run_until(from_sec(5));

  ASSERT_EQ(sink.packets.size(), 400u);
  TimeNs max_gap = 0;
  TimeNs min_gap = kTimeInfinite;
  for (size_t i = 1; i < sink.arrival_times.size(); ++i) {
    const TimeNs gap = sink.arrival_times[i] - sink.arrival_times[i - 1];
    EXPECT_GE(gap, 0);
    max_gap = std::max(max_gap, gap);
    min_gap = std::min(min_gap, gap);
  }
  // Aggregation produced at least one long stall and tight bursts whose
  // interval ratio is what the per-ACK filter keys on.
  EXPECT_GT(max_gap, from_ms(10));
  EXPECT_LE(min_gap, from_us(10));
}

TEST(ThroughputMeter, BinsAndMean) {
  ThroughputMeter m(from_sec(1));
  m.on_bytes(from_ms(100), 125'000);   // 1 Mbit in bin 0
  m.on_bytes(from_ms(1500), 250'000);  // 2 Mbit in bin 1
  auto series = m.mbps_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0], 1.0, 1e-9);
  EXPECT_NEAR(series[1], 2.0, 1e-9);
  EXPECT_NEAR(m.mean_mbps(0, from_sec(2)), 1.5, 1e-9);
  EXPECT_NEAR(m.mean_mbps(from_sec(1), from_sec(2)), 2.0, 1e-9);
}

TEST(ThroughputMeter, EmptyWindowIsZero) {
  ThroughputMeter m;
  EXPECT_DOUBLE_EQ(m.mean_mbps(0, from_sec(1)), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_mbps(from_sec(1), from_sec(1)), 0.0);
}

TEST(Units, BandwidthConversions) {
  const Bandwidth b = Bandwidth::from_mbps(12);
  EXPECT_DOUBLE_EQ(b.mbps(), 12.0);
  EXPECT_DOUBLE_EQ(b.kbps(), 12'000.0);
  EXPECT_EQ(b.tx_time(1500), from_ms(1));
  EXPECT_NEAR(b.bdp_bytes(from_ms(100)), 150'000.0, 1.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_EQ(from_ms(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_sec(from_sec(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ms(from_us(1500)), 1.5);
}

}  // namespace
}  // namespace proteus
