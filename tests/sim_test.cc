// Unit tests for the discrete-event simulator substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/dumbbell.h"
#include "sim/event_queue.h"
#include "sim/fault_timeline.h"
#include "sim/link.h"
#include "sim/noise.h"
#include "sim/ring_buffer.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace proteus {
namespace {

class CollectingSink final : public PacketSink {
 public:
  explicit CollectingSink(Simulator* sim) : sim_(sim) {}
  void on_packet(const Packet& pkt) override {
    packets.push_back(pkt);
    arrival_times.push_back(sim_->now());
  }
  std::vector<Packet> packets;
  std::vector<TimeNs> arrival_times;

 private:
  Simulator* sim_;
};

Packet make_packet(uint64_t seq, int64_t bytes = kMtuBytes,
                   FlowId flow = 1) {
  Packet p;
  p.flow_id = flow;
  p.seq = seq;
  p.size_bytes = bytes;
  return p;
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
}

// ---- Engine contract: both engines pop the identical (when, seq) order.

class EventQueueEngines : public ::testing::TestWithParam<EventEngine> {};

INSTANTIATE_TEST_SUITE_P(
    Engines, EventQueueEngines,
    ::testing::Values(EventEngine::kTimerWheel, EventEngine::kBinaryHeap),
    [](const ::testing::TestParamInfo<EventEngine>& info) {
      return info.param == EventEngine::kTimerWheel ? "Wheel" : "Heap";
    });

TEST_P(EventQueueEngines, OrdersAcrossBucketsAndRotations) {
  EventQueue q(GetParam());
  // Times span several wheel rotations (~268 ms each) and land in
  // arbitrary buckets; a multiplicative LCG gives a fixed pseudo-random
  // schedule without std::rand.
  std::vector<TimeNs> times;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    times.push_back(static_cast<TimeNs>(x % from_sec(1.5)));
  }
  std::vector<TimeNs> popped;
  for (TimeNs t : times) {
    q.push(t, [&popped, t] { popped.push_back(t); });
  }
  while (!q.empty()) {
    const TimeNs head = q.next_time();
    auto [when, cb] = q.pop();
    EXPECT_EQ(when, head);
    cb();
  }
  std::vector<TimeNs> want = times;
  std::stable_sort(want.begin(), want.end());
  EXPECT_EQ(popped, want);  // sorted AND stable: FIFO for equal times
}

TEST_P(EventQueueEngines, InterleavedPushPopStaysOrdered) {
  // Pops interleave with pushes that land behind the current cursor
  // position (but never before the last popped time), the pattern a
  // simulator produces: each event schedules new work relative to "now".
  EventQueue q(GetParam());
  std::vector<TimeNs> popped;
  q.push(0, [] {});
  TimeNs now = 0;
  uint64_t x = 9;
  int pushed = 1;
  while (!q.empty()) {
    auto [when, cb] = q.pop();
    EXPECT_GE(when, now);
    now = when;
    popped.push_back(when);
    if (pushed < 400) {
      x = x * 6364136223846793005ull + 1442695040888963407ull;
      // Mix of sub-bucket, near-future, and beyond-horizon delays.
      const TimeNs delays[] = {static_cast<TimeNs>(x % from_us(100)),
                               static_cast<TimeNs>(x % from_ms(3)),
                               static_cast<TimeNs>(x % from_ms(400))};
      q.push(now + delays[pushed % 3], [] {});
      ++pushed;
    }
  }
  EXPECT_EQ(popped.size(), 400u);
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
}

TEST_P(EventQueueEngines, EqualTimesFifoAcrossBucketSeam) {
  EventQueue q(GetParam());
  std::vector<int> order;
  // All at the same instant far in the future (overflow -> wheel -> active
  // migration for the wheel engine) must still fire in push order.
  for (int i = 0; i < 8; ++i) {
    q.push(from_sec(2), [&order, i] { order.push_back(i); });
  }
  q.push(from_ms(1), [&order] { order.push_back(-1); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueWheel, OverflowRebaseJumpSkipsEmptyRotations) {
  // A lone event minutes ahead forces the wheel to re-base straight to the
  // overflow minimum instead of stepping through ~450 empty rotations.
  EventQueue q(EventEngine::kTimerWheel);
  bool fired = false;
  q.push(from_sec(120), [&fired] { fired = true; });
  EXPECT_EQ(q.next_time(), from_sec(120));
  auto [when, cb] = q.pop();
  EXPECT_EQ(when, from_sec(120));
  cb();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.empty());
  // And the re-based wheel keeps ordering for subsequent mixed pushes.
  std::vector<TimeNs> popped;
  for (TimeNs t : {from_sec(121), from_sec(120) + from_us(3),
                   from_sec(300), from_sec(120) + from_ms(5)}) {
    q.push(t, [] {});
  }
  while (!q.empty()) popped.push_back(q.pop().first);
  EXPECT_TRUE(std::is_sorted(popped.begin(), popped.end()));
  EXPECT_EQ(popped.size(), 4u);
}

TEST(EventQueueWheel, PushBelowWatermarkJoinsActiveHeap) {
  // After settling onto a far bucket, a push at an earlier time (>= the
  // last pop, < the active watermark) must still pop first.
  EventQueue q(EventEngine::kTimerWheel);
  q.push(from_ms(10), [] {});
  EXPECT_EQ(q.next_time(), from_ms(10));  // settles onto the 10 ms bucket
  q.push(from_ms(10) - from_us(20), [] {});
  EXPECT_EQ(q.pop().first, from_ms(10) - from_us(20));
  EXPECT_EQ(q.pop().first, from_ms(10));
}

// ---- RingBuffer (Link's merged FIFO) --------------------------------

TEST(RingBuffer, FifoAcrossWrapAndGrowth) {
  RingBuffer<int> rb;
  rb.reserve(4);
  int next_in = 0;
  int next_out = 0;
  // Interleave pushes and pops so head wraps, then outgrow capacity.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) rb.push_back(next_in++);
    ASSERT_FALSE(rb.empty());
    EXPECT_EQ(rb.front(), next_out);
    rb.pop_front();
    ++next_out;
  }
  EXPECT_EQ(rb.size(), 100u);
  for (size_t i = 0; i < rb.size(); ++i) {
    EXPECT_EQ(rb.at(i), next_out + static_cast<int>(i));
  }
  while (!rb.empty()) {
    EXPECT_EQ(rb.front(), next_out++);
    rb.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingBuffer, ReserveRoundsUpAndClearKeepsCapacity) {
  RingBuffer<int> rb;
  rb.reserve(100);
  EXPECT_GE(rb.capacity(), 100u);
  const size_t cap = rb.capacity();
  for (int i = 0; i < 100; ++i) rb.push_back(i);
  EXPECT_EQ(rb.capacity(), cap);  // no growth below the reservation
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.capacity(), cap);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(from_ms(10), [&] { ++fired; });
  sim.schedule_at(from_ms(30), [&] { ++fired; });
  sim.run_until(from_ms(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), from_ms(20));
  sim.run_until(from_ms(40));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, SchedulingInPastThrows) {
  Simulator sim;
  sim.schedule_at(from_ms(5), [] {});
  sim.run_until(from_ms(5));
  EXPECT_THROW(sim.schedule_at(from_ms(1), [] {}), std::logic_error);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), std::logic_error);
}

TEST(Simulator, NestedSchedulingRuns) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_in(from_ms(1), recurse);
  };
  sim.schedule_in(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
}

TEST(Link, SerializationAndPropagationTiming) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(12);  // 1500B -> 1 ms serialization
  cfg.prop_delay = from_ms(10);
  Link link(&sim, cfg);
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  link.on_packet(make_packet(0));
  link.on_packet(make_packet(1));
  sim.run();

  ASSERT_EQ(sink.packets.size(), 2u);
  EXPECT_EQ(sink.arrival_times[0], from_ms(11));   // 1ms tx + 10ms prop
  EXPECT_EQ(sink.arrival_times[1], from_ms(12));   // queued behind first
}

TEST(Link, TailDropAtBufferLimit) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(10);
  cfg.buffer_bytes = 3 * kMtuBytes;
  Link link(&sim, cfg);
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  for (uint64_t i = 0; i < 10; ++i) link.on_packet(make_packet(i));
  sim.run();

  EXPECT_EQ(sink.packets.size(), 3u);
  EXPECT_EQ(link.stats().tail_drops, 7);
  // Survivors are the head of the burst (FIFO).
  EXPECT_EQ(sink.packets[0].seq, 0u);
  EXPECT_EQ(sink.packets[2].seq, 2u);
}

TEST(Link, RandomLossRate) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(1000);
  cfg.buffer_bytes = 1'000'000'000;
  cfg.random_loss = 0.2;
  Link link(&sim, cfg);
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  const int n = 20000;
  for (int i = 0; i < n; ++i) link.on_packet(make_packet(i));
  sim.run();

  const double loss =
      static_cast<double>(link.stats().random_drops) / n;
  EXPECT_NEAR(loss, 0.2, 0.02);
}

TEST(Link, FifoPreservedUnderLatencyNoise) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(100);
  Link link(&sim, cfg);
  WifiNoise::Config wcfg;
  wcfg.spike_probability = 0.3;
  link.set_latency_noise(std::make_unique<WifiNoise>(wcfg));
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  for (uint64_t i = 0; i < 200; ++i) link.on_packet(make_packet(i));
  sim.run();

  ASSERT_EQ(sink.packets.size(), 200u);
  for (size_t i = 1; i < sink.packets.size(); ++i) {
    EXPECT_LE(sink.packets[i - 1].seq, sink.packets[i].seq);
    EXPECT_LE(sink.arrival_times[i - 1], sink.arrival_times[i]);
  }
}

TEST(Link, QueueDelayTracksBacklog) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(12);  // 1 ms per packet
  Link link(&sim, cfg);
  CollectingSink sink(&sim);
  link.set_sink(&sink);
  for (uint64_t i = 0; i < 5; ++i) link.on_packet(make_packet(i));
  EXPECT_NEAR(to_ms(link.current_queue_delay()), 5.0, 0.01);
}

TEST(Link, RateProcessScalesThroughput) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(12);
  Link link(&sim, cfg);
  link.set_rate_process(std::make_unique<ConstantRateProcess>(0.5));
  CollectingSink sink(&sim);
  link.set_sink(&sink);
  link.on_packet(make_packet(0));
  sim.run();
  // Half rate -> 2 ms serialization (prop_delay default 15 ms).
  EXPECT_EQ(sink.arrival_times[0], from_ms(2) + cfg.prop_delay);
}

// Regression: a fault-injected duplicate used to be scheduled at
// "original arrival + 50 us" WITHOUT running through the FIFO floor, so
// at high link rates (serialization < 50 us) the duplicate of packet N
// landed after packet N+1 had already been delivered — silent reordering
// with allow_reordering=false. Duplicates now take the same
// clamp_delivery path as originals, so delivered seqs stay non-decreasing.
TEST(Link, DuplicatesRespectFifoOrder) {
  Simulator sim;
  LinkConfig cfg;
  cfg.rate = Bandwidth::from_mbps(1000);  // 1500B -> 12 us << 50 us dup lag
  cfg.prop_delay = from_ms(5);
  cfg.allow_reordering = false;
  Link link(&sim, cfg);
  FaultSpec dup;
  dup.type = FaultType::kDuplicate;
  dup.start = 0;
  dup.duration = 0;  // whole run
  dup.value = 1.0;   // duplicate every packet
  FaultTimeline faults({dup}, /*seed=*/3);
  link.set_fault_timeline(&faults);
  CollectingSink sink(&sim);
  link.set_sink(&sink);

  for (uint64_t s = 0; s < 5; ++s) link.on_packet(make_packet(s));
  sim.run();

  ASSERT_EQ(sink.packets.size(), 10u);  // 5 originals + 5 duplicates
  EXPECT_EQ(link.stats().duplicated, 5);
  for (size_t i = 1; i < sink.packets.size(); ++i) {
    EXPECT_GE(sink.packets[i].seq, sink.packets[i - 1].seq)
        << "delivery " << i << " inverted seq order";
    EXPECT_GE(sink.arrival_times[i], sink.arrival_times[i - 1]);
  }
}

TEST(Noise, GaussianNonNegative) {
  Rng rng(1);
  GaussianNoise noise(from_ms(1), from_ms(5));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(noise.sample(rng, 0), 0);
  }
}

TEST(Noise, WifiSpikesBoundedByCap) {
  Rng rng(2);
  WifiNoise::Config cfg;
  cfg.spike_probability = 1.0;
  cfg.spike_cap = from_ms(50);
  cfg.jitter_stddev = 0;
  WifiNoise noise(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LE(noise.sample(rng, 0), from_ms(50));
  }
}

TEST(Noise, MarkovProcessStaysInStateSet) {
  Rng rng(3);
  MarkovRateProcess::Config cfg;
  cfg.multipliers = {1.0, 0.5};
  cfg.mean_dwell = from_ms(10);
  MarkovRateProcess p(cfg);
  bool saw_low = false, saw_high = false;
  for (TimeNs t = 0; t < from_sec(2); t += from_ms(1)) {
    double m = p.multiplier(rng, t);
    EXPECT_TRUE(m == 1.0 || m == 0.5);
    saw_low |= m == 0.5;
    saw_high |= m == 1.0;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Noise, MarkovRejectsBadConfig) {
  MarkovRateProcess::Config cfg;
  cfg.multipliers = {};
  EXPECT_THROW(MarkovRateProcess{cfg}, std::invalid_argument);
  cfg.multipliers = {1.0, -0.5};
  EXPECT_THROW(MarkovRateProcess{cfg}, std::invalid_argument);
}

TEST(Dumbbell, RoutesDataAndAcksPerFlow) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck.rate = Bandwidth::from_mbps(100);
  cfg.bottleneck.prop_delay = from_ms(5);
  cfg.reverse_delay = from_ms(5);
  Dumbbell db(&sim, cfg);

  CollectingSink recv1(&sim), recv2(&sim), ack1(&sim);
  db.attach_flow(1, &recv1, &ack1);
  db.attach_flow(2, &recv2, nullptr);

  db.forward_ingress()->on_packet(make_packet(0, kMtuBytes, 1));
  db.forward_ingress()->on_packet(make_packet(0, kMtuBytes, 2));
  db.forward_ingress()->on_packet(make_packet(1, kMtuBytes, 99));  // unknown
  sim.run();

  EXPECT_EQ(recv1.packets.size(), 1u);
  EXPECT_EQ(recv2.packets.size(), 1u);

  Packet ack;
  ack.flow_id = 1;
  ack.is_ack = true;
  db.send_reverse(ack);
  sim.run();
  EXPECT_EQ(ack1.packets.size(), 1u);
  EXPECT_EQ(db.base_rtt(), from_ms(10));
}

TEST(AckAggregator, BlocksThenReleasesBackToBack) {
  Simulator sim;
  AckAggregatorConfig cfg;
  cfg.enabled = true;
  cfg.mean_block_interval = from_ms(20);
  cfg.mean_block_duration = from_ms(30);
  cfg.release_spacing = from_us(10);
  AckAggregator agg(&sim, cfg, 77);
  CollectingSink sink(&sim);

  // Feed a steady ACK stream; blocks must create long-gap-then-burst.
  for (int i = 0; i < 400; ++i) {
    Packet p = make_packet(static_cast<uint64_t>(i));
    sim.schedule_at(from_ms(i), [&agg, &sink, p] { agg.deliver(p, &sink); });
  }
  // The aggregator keeps scheduling future block events; bound the run.
  sim.run_until(from_sec(5));

  ASSERT_EQ(sink.packets.size(), 400u);
  TimeNs max_gap = 0;
  TimeNs min_gap = kTimeInfinite;
  for (size_t i = 1; i < sink.arrival_times.size(); ++i) {
    const TimeNs gap = sink.arrival_times[i] - sink.arrival_times[i - 1];
    EXPECT_GE(gap, 0);
    max_gap = std::max(max_gap, gap);
    min_gap = std::min(min_gap, gap);
  }
  // Aggregation produced at least one long stall and tight bursts whose
  // interval ratio is what the per-ACK filter keys on.
  EXPECT_GT(max_gap, from_ms(10));
  EXPECT_LE(min_gap, from_us(10));
}

TEST(ThroughputMeter, BinsAndMean) {
  ThroughputMeter m(from_sec(1));
  m.on_bytes(from_ms(100), 125'000);   // 1 Mbit in bin 0
  m.on_bytes(from_ms(1500), 250'000);  // 2 Mbit in bin 1
  auto series = m.mbps_series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0], 1.0, 1e-9);
  EXPECT_NEAR(series[1], 2.0, 1e-9);
  EXPECT_NEAR(m.mean_mbps(0, from_sec(2)), 1.5, 1e-9);
  EXPECT_NEAR(m.mean_mbps(from_sec(1), from_sec(2)), 2.0, 1e-9);
}

TEST(ThroughputMeter, EmptyWindowIsZero) {
  ThroughputMeter m;
  EXPECT_DOUBLE_EQ(m.mean_mbps(0, from_sec(1)), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_mbps(from_sec(1), from_sec(1)), 0.0);
}

TEST(Units, BandwidthConversions) {
  const Bandwidth b = Bandwidth::from_mbps(12);
  EXPECT_DOUBLE_EQ(b.mbps(), 12.0);
  EXPECT_DOUBLE_EQ(b.kbps(), 12'000.0);
  EXPECT_EQ(b.tx_time(1500), from_ms(1));
  EXPECT_NEAR(b.bdp_bytes(from_ms(100)), 150'000.0, 1.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_EQ(from_ms(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_sec(from_sec(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_ms(from_us(1500)), 1.5);
}

}  // namespace
}  // namespace proteus
