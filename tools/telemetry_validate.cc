// telemetry_validate — check telemetry JSONL files.
//
//   telemetry_validate run1/flow0.jsonl [more.jsonl ...]
//
// For every file: each line must be a flat JSON object (strict scan of
// the subset the exporter emits: string/number/bool values, no nesting)
// and must contain every key of the per-MI record schema
// (mi_record_required_keys). Exit 0 when every line of every file
// passes; exit 1 with a line-numbered diagnosis otherwise. Used by
// verify.sh's telemetry tier, so the exporter and this validator must
// agree on the schema — both sides share mi_record_required_keys().
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace {

// Minimal JSON scanner for one exporter line: {"key":value,...} with
// string, number, true/false values. Fills `keys`; returns false (with
// `error`) on any syntax problem.
bool scan_flat_json(const std::string& line, std::set<std::string>& keys,
                    std::string& error) {
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  auto fail = [&](const std::string& what) {
    error = what + " at column " + std::to_string(i + 1);
    return false;
  };
  auto parse_string = [&](std::string& out) {
    if (i >= line.size() || line[i] != '"') return false;
    ++i;
    out.clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        if (i >= line.size()) return false;
      }
      out += line[i++];
    }
    if (i >= line.size()) return false;
    ++i;  // closing quote
    return true;
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return fail("expected key string");
      if (keys.count(key) != 0) return fail("duplicate key \"" + key + "\"");
      keys.insert(key);
      skip_ws();
      if (i >= line.size() || line[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      // Value: string, number, or bool.
      if (i < line.size() && line[i] == '"') {
        std::string v;
        if (!parse_string(v)) return fail("bad string value");
      } else if (line.compare(i, 4, "true") == 0) {
        i += 4;
      } else if (line.compare(i, 5, "false") == 0) {
        i += 5;
      } else {
        const size_t start = i;
        while (i < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[i])) ||
                line[i] == '-' || line[i] == '+' || line[i] == '.' ||
                line[i] == 'e' || line[i] == 'E')) {
          ++i;
        }
        if (i == start) return fail("expected value");
        // Sanity-parse the number.
        try {
          size_t pos = 0;
          (void)std::stod(line.substr(start, i - start), &pos);
          if (pos != i - start) return fail("bad number");
        } catch (const std::exception&) {
          return fail("bad number");
        }
      }
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
  }
  skip_ws();
  if (i != line.size()) return fail("trailing characters");
  return true;
}

bool validate_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  bool ok = true;
  size_t lineno = 0;
  size_t records = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::set<std::string> keys;
    std::string error;
    if (!scan_flat_json(line, keys, error)) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), lineno,
                   error.c_str());
      ok = false;
      continue;
    }
    for (const std::string& required : proteus::mi_record_required_keys()) {
      if (keys.count(required) == 0) {
        std::fprintf(stderr, "%s:%zu: missing required key \"%s\"\n",
                     path.c_str(), lineno, required.c_str());
        ok = false;
      }
    }
    ++records;
  }
  if (records == 0) {
    std::fprintf(stderr, "%s: no records\n", path.c_str());
    return false;
  }
  if (ok) std::printf("%s: %zu records ok\n", path.c_str(), records);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: telemetry_validate <file.jsonl> [...]\n");
    return 1;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!validate_file(argv[i])) ok = false;
  }
  return ok ? 0 : 1;
}
