// bench_compare: gate on simulator perf regressions.
//
// Compares a freshly measured BENCH_simcore.json against the committed
// baseline and exits nonzero when events/sec regressed by more than the
// tolerance (default 10%). Improvements and small noise pass; the
// steady-state allocation count is compared exactly (zero must stay
// zero — an allocation regression is a correctness bug in the
// zero-allocation design, not noise).
//
// Usage: bench_compare BASELINE.json CURRENT.json [--tolerance=0.10]
//                      [--keys=a,b,c] [--rss-tolerance=0.10]
// --keys overrides the default throughput-key list (the historical
// events_per_sec_wheel/heap pair), so other bench JSONs — e.g.
// BENCH_shards.json with events_per_sec_shards1/2/4 — share the gate.
// When both JSONs carry peak_rss_per_flow_bytes the memory gate also
// runs: growth beyond --rss-tolerance (default 10%; deliberately
// separate from the wall-clock tolerance, since RSS is not subject to
// scheduler noise) fails the compare.
// Exit: 0 ok, 1 regression, 2 usage/parse error.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace {

bool slurp(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

// Extracts the number following `"key":` (flat JSON, no nesting of the
// same key). Returns false when absent.
bool extract_number(const std::string& json, const std::string& key,
                    double& out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return false;
  const char* start = json.c_str() + pos + needle.size();
  char* end = nullptr;
  out = std::strtod(start, &end);
  return end != start;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.10;
  double rss_tolerance = 0.10;
  std::string baseline_path, current_path;
  std::vector<std::string> keys = {"events_per_sec_wheel",
                                   "events_per_sec_heap"};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--rss-tolerance=", 0) == 0) {
      rss_tolerance = std::atof(arg.c_str() + 16);
    } else if (arg.rfind("--keys=", 0) == 0) {
      keys.clear();
      std::string list = arg.substr(7);
      size_t pos = 0;
      while (pos < list.size()) {
        const size_t comma = list.find(',', pos);
        const std::string key = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!key.empty()) keys.push_back(key);
        pos = comma == std::string::npos ? list.size() : comma + 1;
      }
      if (keys.empty()) {
        std::cerr << "bench_compare: --keys needs a comma-separated list\n";
        return 2;
      }
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (current_path.empty()) {
      current_path = arg;
    } else {
      std::cerr << "usage: bench_compare BASELINE.json CURRENT.json "
                   "[--tolerance=frac] [--keys=a,b,c]\n";
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty() || tolerance < 0 ||
      tolerance >= 1) {
    std::cerr << "usage: bench_compare BASELINE.json CURRENT.json "
                 "[--tolerance=frac] [--keys=a,b,c]\n";
    return 2;
  }

  std::string baseline, current;
  if (!slurp(baseline_path, baseline)) {
    std::cerr << "bench_compare: cannot read " << baseline_path << "\n";
    return 2;
  }
  if (!slurp(current_path, current)) {
    std::cerr << "bench_compare: cannot read " << current_path << "\n";
    return 2;
  }

  int failures = 0;
  for (const std::string& key : keys) {
    double base = 0, cur = 0;
    if (!extract_number(baseline, key, base)) {
      std::cerr << "bench_compare: " << baseline_path << " lacks " << key
                << "\n";
      return 2;
    }
    if (!extract_number(current, key, cur)) {
      std::cerr << "bench_compare: " << current_path << " lacks " << key
                << "\n";
      return 2;
    }
    const double ratio = cur / base;
    const bool ok = ratio >= 1.0 - tolerance;
    std::cout << key << ": baseline " << base << " current " << cur
              << " ratio " << ratio << (ok ? " OK" : " REGRESSION") << "\n";
    if (!ok) ++failures;
  }

  // Steady-state allocations: exact gate on the wheel engine. The
  // baseline documents zero; any growth is a reintroduced per-event
  // allocation.
  double base_allocs = 0, cur_allocs = 0;
  if (extract_number(baseline, "steady_allocs", base_allocs) &&
      extract_number(current, "steady_allocs", cur_allocs)) {
    const bool ok = cur_allocs <= base_allocs;
    std::cout << "steady_allocs (wheel): baseline " << base_allocs
              << " current " << cur_allocs << (ok ? " OK" : " REGRESSION")
              << "\n";
    if (!ok) ++failures;
  }

  // Per-flow resident memory: lower is better, so the gate inverts —
  // fail when the current run grew past the baseline by more than the
  // RSS tolerance. Applied automatically when both JSONs carry the key
  // (BENCH_shards.json does; BENCH_simcore.json doesn't).
  double base_rss = 0, cur_rss = 0;
  if (extract_number(baseline, "peak_rss_per_flow_bytes", base_rss) &&
      extract_number(current, "peak_rss_per_flow_bytes", cur_rss) &&
      base_rss > 0) {
    const double ratio = cur_rss / base_rss;
    const bool ok = ratio <= 1.0 + rss_tolerance;
    std::cout << "peak_rss_per_flow_bytes: baseline " << base_rss
              << " current " << cur_rss << " ratio " << ratio
              << (ok ? " OK" : " REGRESSION") << "\n";
    if (!ok) ++failures;
  }

  if (failures > 0) {
    std::cerr << "bench_compare: " << failures
              << " perf gate(s) failed (tolerance "
              << tolerance * 100 << "%)\n";
    return 1;
  }
  std::cout << "bench_compare: OK\n";
  return 0;
}
