// proteus_sim — run an arbitrary scenario from the command line.
//
//   proteus_sim --bw=50 --rtt=30 --flows=bbr@0,proteus-s@10
//   proteus_sim --wifi --flows=proteus-p --trace=run.csv
//
// Prints per-flow throughput (over the post-warmup window), RTT
// percentiles, and link utilization; optionally writes CSV traces. With
// --faults=... a scripted fault schedule runs against the scenario and the
// fault counters are printed.
//
// The run executes under the run supervisor (harness/supervisor.h):
// --retries=N retries with fresh deterministic sub-seeds,
// --run-timeout/--sim-timeout arm the watchdogs, and --bundle-dir=DIR
// drops a repro bundle when the run still fails after all retries.
// SIGINT/SIGTERM stop the simulation cleanly: any requested trace CSVs
// are still written from the partial run before exiting with code 130.
// Simulation invariants (packet conservation, finite utilities, clamped
// rates) are checked after every run; a violation is a simulator bug and
// exits with code 2 (other failures exit 3).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/supervisor.h"
#include "harness/table.h"
#include "harness/telemetry_export.h"
#include "harness/trace_export.h"
#include "telemetry/profiler.h"

using namespace proteus;

namespace {

// Writes the optional CSV outputs; used for both completed and partial
// (interrupted) runs.
void write_outputs(const CliOptions& opt, const Scenario& scenario,
                   const std::vector<Flow*>& flows, TimeNs duration) {
  if (!opt.link_stats_path.empty()) {
    // Multi-bottleneck shapes (including the sharded cdn fabric) get the
    // per-hop table (leading link-name column); the dumbbell keeps its
    // historical single-row format.
    const auto rows = scenario.link_stats();
    const bool ok =
        rows.size() > 1
            ? write_link_stats_csv(opt.link_stats_path, rows)
            : write_link_stats_csv(opt.link_stats_path,
                                   scenario.bottleneck().stats());
    if (ok) {
      std::printf("link stats written to %s\n", opt.link_stats_path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n",
                   opt.link_stats_path.c_str());
    }
  }
  if (!opt.trace_path.empty()) {
    std::vector<const Flow*> cflows(flows.begin(), flows.end());
    if (write_throughput_csv(opt.trace_path, cflows, duration)) {
      std::printf("throughput trace written to %s\n",
                  opt.trace_path.c_str());
    } else {
      std::fprintf(stderr, "could not write %s\n", opt.trace_path.c_str());
    }
  }
  if (!opt.rtt_trace_path.empty() && !flows.empty()) {
    if (write_rtt_csv(opt.rtt_trace_path, *flows.front())) {
      std::printf("rtt trace (flow %llu) written to %s\n",
                  static_cast<unsigned long long>(flows.front()->config().id),
                  opt.rtt_trace_path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && (args[0] == "--help" || args[0] == "-h")) {
    std::printf("%s\n\nprotocols: ", cli_usage().c_str());
    for (const std::string& p : all_protocol_names()) {
      std::printf("%s ", p.c_str());
    }
    std::printf("bbr-s ledbat-25 proteus-h allegro\n");
    return 0;
  }

  const CliParseResult parsed = parse_cli(args);
  if (!parsed.ok) {
    std::fprintf(stderr, "error: %s\n%s\n", parsed.error.c_str(),
                 cli_usage().c_str());
    return 1;
  }
  const CliOptions& opt = parsed.options;
  const TimeNs duration = from_sec(opt.duration_sec);
  const TimeNs warmup = from_sec(opt.warmup_sec);

  install_interrupt_handler();
  SupervisorConfig sup = opt.supervisor;
  sup.jobs = 1;
  sup.sweep_name = "proteus_sim";
  sup.checkpoint_path.clear();  // a single run has nothing to resume

  // --profile: arm the global phase profiler for the whole run.
  Profiler profiler;
  if (opt.profile) Profiler::install(&profiler);

  // The single supervised "sweep point" builds the scenario into main's
  // scope so the report below can read it — including the partial state
  // left behind by an interrupt or watchdog timeout.
  std::unique_ptr<Scenario> scenario;
  std::vector<Flow*> flows;
  ChurnStats churn_stats;
  RunInfo info = run_info("proteus_sim", opt.scenario);
  info.cli = argv[0];
  for (const std::string& a : args) info.cli += " " + a;

  std::vector<SupervisedTask<double>> tasks;
  tasks.push_back(
      {[&](RunContext& ctx) {
         ScenarioConfig cfg = opt.scenario;
         cfg.seed = ctx.attempt_seed(opt.scenario.seed);
         if (opt.churn.has_value() && cfg.planned_flows == 0) {
           // Pre-size the flow-demux tables for the churn steady state
           // (cap plus headroom for ids in flight between release and
           // reuse).
           cfg.planned_flows =
               static_cast<FlowId>(opt.churn->max_concurrent) * 2;
         }
         scenario = std::make_unique<Scenario>(cfg);
         flows.clear();
         // Sessions are scoped to the attempt: their destructors export
         // the telemetry files even when the watchdog/invariant check
         // throws below.
         std::vector<std::unique_ptr<FlowTelemetrySession>> telemetry;
         for (const CliFlowSpec& spec : opt.flows) {
           flows.push_back(
               &scenario->add_flow(spec.protocol, from_sec(spec.start_sec)));
           telemetry.push_back(std::make_unique<FlowTelemetrySession>(
               &ctx, *flows.back(),
               "flow" + std::to_string(flows.size() - 1) + "-" +
                   spec.protocol));
         }
         // The driver lives inside the attempt: it owns the churn flows
         // and must release them before the next attempt rebuilds the
         // scenario.
         std::optional<ChurnDriver> churn;
         if (opt.churn.has_value()) churn.emplace(*scenario, *opt.churn);
         supervised_run_until(*scenario, duration, &ctx);
         check_invariants_or_throw(*scenario);
         if (churn.has_value()) churn_stats = churn->stats();
         return 0.0;
       },
       std::move(info)});
  const SupervisedSweep<double> sweep =
      run_supervised(std::move(tasks), sup, scalar_codec());
  const PointStatus& st = sweep.statuses[0];

  if (opt.profile) {
    Profiler::install(nullptr);
    std::printf("\nphase profile (wall time, inclusive):\n%s\n",
                profiler.summary_table().c_str());
  }
  if (sup.telemetry.enabled()) {
    std::printf("telemetry written to %s/ (every %d MI%s)\n",
                sup.telemetry.dir.c_str(), sup.telemetry.every,
                sup.telemetry.every == 1 ? "" : "s");
  }

  if (st.status == RunStatus::kSkipped) {
    std::fprintf(stderr, "interrupted; writing partial outputs\n");
    if (scenario) write_outputs(opt, *scenario, flows, duration);
    return 130;
  }
  if (st.status != RunStatus::kOk) {
    std::fprintf(stderr, "%s", sweep.manifest().c_str());
    if (st.status == RunStatus::kInvariantViolation) {
      std::fprintf(stderr, "INVARIANT VIOLATIONS:\n%s\n", st.error.c_str());
      return 2;
    }
    return 3;
  }

  std::printf("link: %.0f Mbps, %.0f ms RTT, %lld B buffer, loss %.4f%s\n",
              opt.scenario.bandwidth_mbps, opt.scenario.rtt_ms,
              static_cast<long long>(opt.scenario.buffer_bytes),
              opt.scenario.random_loss, opt.wifi ? ", wifi" : "");
  std::printf("measured over [%.0f, %.0f] s\n", opt.warmup_sec,
              opt.duration_sec);
  if (st.attempts > 1) {
    std::printf("(succeeded on attempt %d of %d)\n", st.attempts,
                sup.retries + 1);
  }
  std::printf("\n");

  Table t({"flow", "protocol", "start_s", "mbps", "rtt_p50_ms",
           "rtt_p95_ms", "loss%"});
  double total = 0.0;
  for (size_t i = 0; i < flows.size(); ++i) {
    Flow* f = flows[i];
    const double mbps = f->mean_throughput_mbps(warmup, duration);
    total += mbps;
    const auto& stats = f->sender().stats();
    const double loss =
        stats.packets_sent > 0
            ? 100.0 * static_cast<double>(stats.packets_lost) /
                  static_cast<double>(stats.packets_sent)
            : 0.0;
    t.add_row({std::to_string(f->config().id), opt.flows[i].protocol,
               fmt(opt.flows[i].start_sec, 0), fmt(mbps, 2),
               fmt(f->rtt_samples().median(), 1),
               fmt(f->rtt_samples().percentile(95), 1), fmt(loss, 2)});
  }
  t.print();
  const size_t fabric_links = scenario->link_stats().size();
  if (fabric_links > 1) {
    // Flows sit on different bottlenecks here; a single-link utilization
    // ratio would be meaningless (and can exceed 100%).
    std::printf("\naggregate throughput: %.2f Mbps over %d bottleneck hops\n",
                total, static_cast<int>(fabric_links));
  } else {
    std::printf("\nutilization: %.1f%%\n",
                100.0 * total / opt.scenario.bandwidth_mbps);
  }

  if (opt.churn.has_value()) {
    std::printf("churn: spawned=%lld completed=%lld skipped=%lld "
                "live=%lld peak=%lld\n",
                static_cast<long long>(churn_stats.spawned),
                static_cast<long long>(churn_stats.completed),
                static_cast<long long>(churn_stats.skipped),
                static_cast<long long>(churn_stats.concurrent),
                static_cast<long long>(churn_stats.peak_concurrent));
  }
  const PartitionPlan plan = scenario->partition_plan();
  if (plan.parts > 1 || opt.scenario.shards > 0) {
    std::printf("shards: %d part(s) on %d thread(s), window %.3f ms, "
                "%llu events\n",
                plan.parts, std::max(1, opt.scenario.shards),
                to_ms(plan.window),
                static_cast<unsigned long long>(
                    scenario->events_processed()));
  }

  if (!opt.scenario.faults.empty()) {
    const LinkStats& ls = scenario->bottleneck().stats();
    std::printf("fault counters: blackout_drops=%lld reordered=%lld "
                "duplicated=%lld ack_drops=%lld\n",
                static_cast<long long>(ls.blackout_drops),
                static_cast<long long>(ls.reordered),
                static_cast<long long>(ls.duplicated),
                static_cast<long long>(ls.ack_drops));
  }
  write_outputs(opt, *scenario, flows, duration);
  return 0;
}
