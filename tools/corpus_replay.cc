// corpus_replay — regression-check the committed adversarial corpus.
//
//   corpus_replay corpus/adversarial            # replay every .adv entry
//   corpus_replay corpus/adversarial/foo.adv    # replay one entry
//
// Each entry's `proteus_sim` CLI line is re-evaluated through the exact
// path the search used (src/search/evaluate.h) and the result is
// compared against the recorded score (within the entry's tolerance)
// and run status. A drift means protocol or simulator behavior changed
// on a scenario that was specifically discovered to be hard — exactly
// the runs a refactor should not silently alter. verify.sh runs this as
// its adversarial-corpus tier.
//
// Exit codes: 0 all entries match, 1 any mismatch/IO error, 2 no
// entries found (an empty corpus directory is a wiring bug, not a pass).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/fault_spec.h"
#include "search/corpus.h"

using namespace proteus;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: corpus_replay <dir-or-entry.adv> [more...]\n");
    return 1;
  }

  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() > 4 && arg.compare(arg.size() - 4, 4, ".adv") == 0) {
      files.push_back(arg);
    } else {
      for (std::string& f : list_corpus_files(arg)) {
        files.push_back(std::move(f));
      }
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "corpus_replay: no .adv entries found\n");
    return 2;
  }

  int failures = 0;
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "FAIL %s: cannot read\n", path.c_str());
      ++failures;
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();

    CorpusEntry entry;
    std::string error;
    if (!parse_corpus_entry(text.str(), entry, error)) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), error.c_str());
      ++failures;
      continue;
    }

    const ReplayOutcome outcome = replay_corpus_entry(entry);
    if (outcome.ok) {
      std::printf("ok   %s (%s score %s)\n", path.c_str(),
                  entry.objective.c_str(),
                  format_double_shortest(outcome.replayed_score).c_str());
    } else {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(),
                   outcome.message.c_str());
      ++failures;
    }
  }

  std::printf("%zu entries, %d failure(s)\n", files.size(), failures);
  return failures == 0 ? 0 : 1;
}
