// proteus_live — drive real traffic through the unmodified controller
// stack over UDP (src/rt).
//
//   proteus_live [--role=loopback|send|recv] [flags]
//
//   --role=loopback        sender + receiver threads in this process
//                          over 127.0.0.1 (default; what CI runs)
//   --role=send --peer=<host:port>
//                          sender endpoint of a two-process transfer
//   --role=recv [--bind=<host:port>]
//                          receiver endpoint (default bind 0.0.0.0:9753)
//
//   --cc=<name>            controller (harness factory names; default
//                          proteus-s)
//   --seed=<n>             controller + chaos RNG seed (default 1)
//   --bytes=<n>            transfer size; 0 = run for --duration
//   --duration=<sec>       time cap (default 10)
//   --chaos=<spec>         rate=<Mbps>,delay=<time>,queue=<bytes>,
//                          drop=<p>,seed=<n> — emulated bottleneck +
//                          seeded impairment (rt/chaos.h)
//   --faults=<spec>        windowed events in the simulator's --faults=
//                          grammar (blackout@2:0.5, ackloss@1:p=0.9:2, ...)
//   --telemetry=<dir>      export per-MI JSONL + metrics CSV after the run
//   --label=<name>         run label for telemetry file names
//   --idle-timeout=<sec>   receiver idle stop (default 5)
//
// Exit codes match the sweep drivers: 0 ok, 3 failed, 130 interrupted.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/fault_spec.h"
#include "harness/supervisor.h"
#include "rt/live_run.h"

namespace {

using namespace proteus;

struct LiveCli {
  std::string role = "loopback";
  std::string peer_host;
  uint16_t peer_port = 0;
  std::string bind_host = "";
  uint16_t bind_port = 9753;
  LiveRunConfig run;
};

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: proteus_live [--role=loopback|send|recv] [--cc=<name>]\n"
      "  [--seed=<n>] [--bytes=<n>] [--duration=<sec>] [--chaos=<spec>]\n"
      "  [--faults=<spec>] [--peer=<host:port>] [--bind=<host:port>]\n"
      "  [--telemetry=<dir>] [--label=<name>] [--idle-timeout=<sec>]\n"
      "  %s\n"
      "  %s\n",
      chaos_usage().c_str(), fault_spec_usage().c_str());
}

bool parse_hostport(const std::string& value, std::string& host,
                    uint16_t& port, std::string& error) {
  const size_t colon = value.rfind(':');
  if (colon == std::string::npos) {
    error = "expected host:port, got: " + value;
    return false;
  }
  host = value.substr(0, colon);
  char* end = nullptr;
  const std::string ports = value.substr(colon + 1);
  const long p = std::strtol(ports.c_str(), &end, 10);
  if (end != ports.c_str() + ports.size() || p <= 0 || p > 65535) {
    error = "bad port: " + ports;
    return false;
  }
  port = static_cast<uint16_t>(p);
  return true;
}

bool parse_args(const std::vector<std::string>& args, LiveCli& cli,
                std::string& error) {
  for (const std::string& arg : args) {
    auto value_of = [&](const char* flag, std::string& out) {
      const std::string prefix = std::string(flag) + "=";
      if (arg.compare(0, prefix.size(), prefix) != 0) return false;
      out = arg.substr(prefix.size());
      return true;
    };
    std::string value;
    char* end = nullptr;
    if (value_of("--role", value)) {
      if (value != "loopback" && value != "send" && value != "recv") {
        error = "bad --role (loopback|send|recv): " + value;
        return false;
      }
      cli.role = value;
    } else if (value_of("--cc", value)) {
      cli.run.cc = value;
    } else if (value_of("--seed", value)) {
      cli.run.seed = std::strtoull(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size()) {
        error = "bad --seed: " + value;
        return false;
      }
    } else if (value_of("--bytes", value)) {
      cli.run.transfer_bytes = std::strtoll(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size() || cli.run.transfer_bytes < 0) {
        error = "bad --bytes: " + value;
        return false;
      }
    } else if (value_of("--duration", value)) {
      const double sec = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || sec <= 0) {
        error = "bad --duration: " + value;
        return false;
      }
      cli.run.duration = from_sec(sec);
    } else if (value_of("--idle-timeout", value)) {
      const double sec = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || sec <= 0) {
        error = "bad --idle-timeout: " + value;
        return false;
      }
      cli.run.recv_idle_timeout = from_sec(sec);
    } else if (value_of("--chaos", value)) {
      ChaosParseResult r = parse_chaos(value);
      if (!r.ok) {
        error = r.error;
        return false;
      }
      // Preserve any faults already parsed from --faults=.
      r.config.faults = cli.run.chaos.faults;
      cli.run.chaos = r.config;
    } else if (value_of("--faults", value)) {
      FaultParseResult r = parse_faults(value);
      if (!r.ok) {
        error = r.error;
        return false;
      }
      cli.run.chaos.faults = r.faults;
    } else if (value_of("--peer", value)) {
      if (!parse_hostport(value, cli.peer_host, cli.peer_port, error)) {
        return false;
      }
    } else if (value_of("--bind", value)) {
      if (!parse_hostport(value, cli.bind_host, cli.bind_port, error)) {
        return false;
      }
    } else if (value_of("--telemetry", value)) {
      cli.run.telemetry_dir = value;
    } else if (value_of("--label", value)) {
      cli.run.run_label = value;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      std::exit(0);
    } else {
      error = "unknown argument: " + arg;
      return false;
    }
  }
  if (cli.role == "send" && cli.peer_host.empty()) {
    error = "--role=send requires --peer=<host:port>";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  LiveCli cli;
  std::string error;
  if (!parse_args({argv + 1, argv + argc}, cli, error)) {
    std::fprintf(stderr, "proteus_live: %s\n", error.c_str());
    usage(stderr);
    return 3;
  }

  install_interrupt_handler();

  LiveRunResult result;
  if (cli.role == "loopback") {
    result = run_live_loopback(cli.run);
  } else if (cli.role == "send") {
    result = run_live_sender(cli.run, cli.peer_host, cli.peer_port);
  } else {
    result = run_live_receiver(cli.run, cli.bind_host, cli.bind_port);
  }

  std::printf("%s\n", summarize_live_run(result).c_str());
  if (!result.telemetry_jsonl.empty()) {
    std::printf("telemetry: %s\n", result.telemetry_jsonl.c_str());
  }
  if (!result.telemetry_metrics.empty()) {
    std::printf("metrics: %s\n", result.telemetry_metrics.c_str());
  }

  if (result.interrupted) return 130;
  return result.ok ? 0 : 3;
}
