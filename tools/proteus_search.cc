// proteus_search — adversarial scenario search (src/search/).
//
//   proteus_search --objective=scavenger-utility --budget=200 --seed=1
//   proteus_search --objective=recovery --budget=120 --jobs=4 \
//                  --corpus=corpus/adversarial
//   proteus_search --objective=planted:7 --budget=48 --assert-improves
//
// Evolves scenario genomes with a (mu+lambda) loop, scoring each
// candidate with the chosen objective (higher = worse case for the
// protocol under test). Prints the score trajectory and the top
// findings, each as a one-line `proteus_sim` command that replays the
// scenario verbatim. With --corpus=DIR the top findings are written as
// .adv entries for tools/corpus_replay.
//
// Output is bit-identical for a fixed (objective, budget, seed, mu,
// lambda, duration, warmup) regardless of --jobs; see src/search/search.h
// for the contract (and why --run-timeout is off by default).
//
// Exit codes: 0 ok, 1 usage error, 130 interrupted, and with
// --assert-improves, 4 when the best finding fails to beat the
// objective's pristine baseline.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/fault_spec.h"
#include "search/corpus.h"

using namespace proteus;

namespace {

const char* kUsage =
    "usage: proteus_search [flags]\n"
    "  --objective=<name>     scavenger-utility|fairness|recovery|planted[:k]\n"
    "  --budget=<n>           total candidate evaluations (default 200)\n"
    "  --seed=<n>             search seed (default 1)\n"
    "  --jobs=<n>             parallel evaluation workers (default 1)\n"
    "  --mu=<n> --lambda=<n>  survivors / children per generation (6/12)\n"
    "  --duration=<sec>       per-candidate run window (default 12)\n"
    "  --warmup=<sec>         measurement warmup (default 4)\n"
    "  --top=<k>              findings to print/commit (default 5)\n"
    "  --corpus=<dir>         write top findings as .adv corpus entries\n"
    "  --tolerance=<t>        replay tolerance recorded in entries (0.02)\n"
    "  --run-timeout=<sec>    per-candidate wall watchdog (default off;\n"
    "                         breaks run-for-run determinism)\n"
    "  --bundle-dir=<dir>     repro bundles for failed candidate runs\n"
    "  --assert-improves      exit 4 unless best score beats the baseline\n";

bool parse_value(const std::string& arg, const std::string& flag,
                 std::string& out) {
  if (arg.compare(0, flag.size(), flag) != 0) return false;
  out = arg.substr(flag.size());
  return true;
}

bool parse_num(const std::string& arg, const std::string& flag, double& out) {
  std::string v;
  if (!parse_value(arg, flag, v)) return false;
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  if (end == nullptr || *end != '\0' || v.empty()) {
    std::fprintf(stderr, "bad value in %s\n", arg.c_str());
    std::exit(1);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  SearchConfig cfg;
  std::string corpus_dir;
  bool assert_improves = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string sval;
    double num = 0;
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (parse_value(arg, "--objective=", sval)) {
      cfg.objective = sval;
    } else if (parse_num(arg, "--budget=", num)) {
      cfg.budget = static_cast<int>(num);
    } else if (parse_num(arg, "--seed=", num)) {
      cfg.seed = static_cast<uint64_t>(num);
    } else if (parse_num(arg, "--jobs=", num)) {
      cfg.jobs = static_cast<int>(num);
    } else if (parse_num(arg, "--mu=", num)) {
      cfg.mu = static_cast<int>(num);
    } else if (parse_num(arg, "--lambda=", num)) {
      cfg.lambda = static_cast<int>(num);
    } else if (parse_num(arg, "--duration=", num)) {
      cfg.duration_sec = num;
    } else if (parse_num(arg, "--warmup=", num)) {
      cfg.warmup_sec = num;
    } else if (parse_num(arg, "--top=", num)) {
      cfg.top_k = static_cast<int>(num);
    } else if (parse_value(arg, "--corpus=", sval)) {
      corpus_dir = sval;
    } else if (parse_num(arg, "--tolerance=", num)) {
      cfg.tolerance = num;
    } else if (parse_num(arg, "--run-timeout=", num)) {
      cfg.run_timeout_sec = num;
    } else if (parse_value(arg, "--bundle-dir=", sval)) {
      cfg.bundle_dir = sval;
    } else if (arg == "--assert-improves") {
      assert_improves = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n%s", arg.c_str(), kUsage);
      return 1;
    }
  }

  install_interrupt_handler();

  SearchResult result;
  try {
    result = run_search(cfg, stdout);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  std::printf("\nobjective %s: baseline %s, best %s after %d evaluations "
              "(%d generations)\n",
              cfg.objective.c_str(),
              format_double_shortest(result.baseline_score).c_str(),
              result.top.empty()
                  ? "n/a"
                  : format_double_shortest(result.top.front().score).c_str(),
              result.evaluations, result.generations);
  for (size_t i = 0; i < result.top.size(); ++i) {
    const Finding& f = result.top[i];
    std::printf("#%zu score %s status %s\n    %s\n", i + 1,
                format_double_shortest(f.score).c_str(),
                run_status_name(f.status), f.cli.c_str());
  }

  if (!corpus_dir.empty()) {
    for (const Finding& f : result.top) {
      // Only reproducible outcomes belong in the corpus: ok runs and
      // invariant violations replay deterministically; errors/timeouts
      // don't pin anything.
      if (f.status != RunStatus::kOk &&
          f.status != RunStatus::kInvariantViolation) {
        continue;
      }
      const CorpusEntry entry = corpus_entry_from_finding(
          cfg.objective, cfg.seed, cfg.tolerance, f);
      std::string error;
      const std::string path = write_corpus_entry(corpus_dir, entry, error);
      if (path.empty()) {
        std::fprintf(stderr, "corpus write failed: %s\n", error.c_str());
        return 1;
      }
      std::printf("corpus entry written: %s\n", path.c_str());
    }
  }

  if (result.interrupted) return 130;
  if (assert_improves && !result.improved()) {
    std::fprintf(stderr,
                 "assert-improves: best %s did not beat baseline %s\n",
                 result.top.empty()
                     ? "n/a"
                     : format_double_shortest(result.top.front().score).c_str(),
                 format_double_shortest(result.baseline_score).c_str());
    return 4;
  }
  return 0;
}
